"""The Boris particle pusher (eqs. 6-13 of the paper).

Two implementations share the same mathematics:

* :func:`boris_push_particle` — scalar, one particle at a time, written
  to match the paper's four-step procedure (and the Hi-Chi C++ kernel)
  line by line.  The test suite uses it as the semantic reference.
* :func:`boris_push` — vectorized over a whole
  :class:`~repro.particles.ensemble.ParticleEnsemble` in the ensemble's
  own storage precision and memory layout.  This is the kernel the
  simulated oneAPI runtime executes.

The scheme (Gaussian units, ``dp/dt = q (E + v x B / c)``):

1. half electric kick:      ``p- = p(n-1/2) + q E dt/2``
2. magnetic rotation:       ``t = q B dt / (2 gamma(p-) m c)``,
                            ``s = 2 t / (1 + t^2)``,
                            ``p' = p- + p- x t``, ``p+ = p- + p' x s``
3. half electric kick:      ``p(n+1/2) = p+ + q E dt/2``
4. position drift:          ``r(n+1) = r(n) + p / (gamma m) * dt``

The rotation preserves ``|p|`` exactly (independently of dt), which is
the property the paper highlights and our property tests verify.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from ..constants import SPEED_OF_LIGHT
from ..errors import SimulationError
from ..fields.base import FieldValues
from ..fp import FP3
from ..particles.ensemble import ParticleEnsemble
from ..particles.particle import Particle
from ..particles.proxy import ParticleProxy

__all__ = ["boris_push_particle", "boris_push", "boris_rotation", "BorisPusher"]


def boris_rotation(p_minus: FP3, b: FP3, gamma: float, mass: float,
                   charge: float, dt: float) -> FP3:
    """Rotate ``p_minus`` about ``b`` by the Boris half-angle construction.

    Returns ``p+`` with ``|p+| == |p-|`` exactly (up to round-off); the
    rotation angle is ``~ q |B| dt / (gamma m c)`` for small dt.
    """
    factor = charge * dt / (2.0 * gamma * mass * SPEED_OF_LIGHT)
    t = b * factor
    s = t * (2.0 / (1.0 + t.norm2()))
    p_prime = p_minus + p_minus.cross(t)
    return p_minus + p_prime.cross(s)


def boris_push_particle(particle: Union[Particle, ParticleProxy],
                        e: FP3, b: FP3, dt: float,
                        mass: float, charge: float) -> None:
    """Advance one particle by one Boris step (scalar reference).

    Mutates ``particle`` in place: momentum ``p(n-1/2) -> p(n+1/2)``,
    position ``r(n) -> r(n+1)``, and the stored gamma.  ``e`` and ``b``
    are the fields at the particle position at time ``t(n)``.
    """
    mc = mass * SPEED_OF_LIGHT
    e_coeff = charge * dt / 2.0

    # Step 1: half-step due to E (eq. 9).
    p_minus = particle.momentum + e * e_coeff

    # gamma at integer time level n, computed from p- (eq. 13 context).
    gamma_n = math.sqrt(1.0 + p_minus.norm2() / (mc * mc))

    # Step 2: rotation about B (eqs. 12-13).
    p_plus = boris_rotation(p_minus, b, gamma_n, mass, charge, dt)

    # Step 3: half-step due to E (eq. 10).
    p_new = p_plus + e * e_coeff

    # Step 4: velocity from the new momentum, then position drift (eq. 7).
    gamma_new = math.sqrt(1.0 + p_new.norm2() / (mc * mc))
    velocity = p_new * (1.0 / (gamma_new * mass))

    particle.momentum = p_new
    particle.gamma = gamma_new
    particle.position = particle.position + velocity * dt


def boris_push(ensemble: ParticleEnsemble, fields: FieldValues,
               dt: float) -> None:
    """Advance every particle of ``ensemble`` by one Boris step.

    ``fields`` holds per-particle E and B values (shape ``(N,)`` per
    component) at the particles' current positions, time ``t(n)``.  All
    arithmetic runs in the ensemble's storage precision; for AoS
    ensembles the component views are strided, so the kernel performs
    the non-unit-stride accesses the paper discusses.
    """
    dtype = ensemble.precision.dtype
    dt_fp = dtype.type(dt)
    half = dtype.type(0.5)
    one = dtype.type(1.0)
    two = dtype.type(2.0)
    inv_c = dtype.type(1.0 / SPEED_OF_LIGHT)

    # Typed-LUT lookups: the species table is cast to the storage
    # precision once and gathered per particle, instead of gathering
    # float64 and casting the O(N) result on every call.
    mass = ensemble.masses(dtype)
    charge = ensemble.charges(dtype)
    inv_mc = one / (mass * dtype.type(SPEED_OF_LIGHT))
    e_coeff = charge * dt_fp * half

    ex = np.asarray(fields.ex, dtype=dtype)
    ey = np.asarray(fields.ey, dtype=dtype)
    ez = np.asarray(fields.ez, dtype=dtype)
    bx = np.asarray(fields.bx, dtype=dtype)
    by = np.asarray(fields.by, dtype=dtype)
    bz = np.asarray(fields.bz, dtype=dtype)

    px = ensemble.component("px")
    py = ensemble.component("py")
    pz = ensemble.component("pz")

    # Step 1: half electric kick -> p-.
    pmx = px + e_coeff * ex
    pmy = py + e_coeff * ey
    pmz = pz + e_coeff * ez

    # gamma(p-) at time level n.
    um2 = (pmx * inv_mc) ** 2 + (pmy * inv_mc) ** 2 + (pmz * inv_mc) ** 2
    gamma_n = np.sqrt(one + um2)

    # Step 2: rotation.  t = q B dt / (2 gamma m c), s = 2 t / (1 + t^2).
    t_coeff = e_coeff * inv_c / (gamma_n * mass)
    tx = bx * t_coeff
    ty = by * t_coeff
    tz = bz * t_coeff
    t2 = tx * tx + ty * ty + tz * tz
    s_coeff = two / (one + t2)
    sx = tx * s_coeff
    sy = ty * s_coeff
    sz = tz * s_coeff

    # p' = p- + p- x t
    ppx = pmx + (pmy * tz - pmz * ty)
    ppy = pmy + (pmz * tx - pmx * tz)
    ppz = pmz + (pmx * ty - pmy * tx)

    # p+ = p- + p' x s
    plx = pmx + (ppy * sz - ppz * sy)
    ply = pmy + (ppz * sx - ppx * sz)
    plz = pmz + (ppx * sy - ppy * sx)

    # Step 3: half electric kick -> p(n+1/2), stored back.
    px_new = plx + e_coeff * ex
    py_new = ply + e_coeff * ey
    pz_new = plz + e_coeff * ez

    # Step 4: new gamma, velocity, position drift.
    u2 = (px_new * inv_mc) ** 2 + (py_new * inv_mc) ** 2 \
        + (pz_new * inv_mc) ** 2
    gamma_new = np.sqrt(one + u2)
    v_coeff = dt_fp / (gamma_new * mass)

    # The whole chain must have stayed in storage precision: a float64
    # operand anywhere above silently promotes everything after it, and
    # the stores below would round it away — right answer, wrong (and
    # unrepresentative) arithmetic.
    if px_new.dtype != dtype or gamma_new.dtype != dtype:
        raise SimulationError(
            f"boris_push drifted out of storage precision: computed "
            f"{px_new.dtype}/{gamma_new.dtype}, ensemble stores {dtype}")

    px[:] = px_new
    py[:] = py_new
    pz[:] = pz_new
    ensemble.component("gamma")[:] = gamma_new
    ensemble.component("x")[:] += px_new * v_coeff
    ensemble.component("y")[:] += py_new * v_coeff
    ensemble.component("z")[:] += pz_new * v_coeff


class BorisPusher:
    """Class wrapper giving the Boris kernel the common pusher interface.

    See :class:`repro.core.pushers.MomentumPusher` for the interface
    contract; this class is registered there under the name ``"boris"``.
    """

    name = "boris"

    def push(self, ensemble: ParticleEnsemble, fields: FieldValues,
             dt: float) -> None:
        """One Boris step over the whole ensemble."""
        boris_push(ensemble, fields, dt)

    def push_particle(self, particle: Union[Particle, ParticleProxy],
                      e: FP3, b: FP3, dt: float, mass: float,
                      charge: float) -> None:
        """One Boris step for a single particle (scalar reference)."""
        boris_push_particle(particle, e, b, dt, mass, charge)
