"""Single-particle value object, mirroring Hi-Chi's ``Particle`` class."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..constants import SPEED_OF_LIGHT
from ..errors import ConfigurationError
from ..fp import FP3
from .types import ParticleTypeTable

__all__ = ["Particle"]


@dataclass
class Particle:
    """One macroparticle: position, momentum, weight, gamma and type.

    This is the scalar (AoS "array element") view of particle data; the
    vectorized kernels operate on ensembles instead.  ``gamma`` is a
    *stored* quantity, as in the paper's class layout, and must be kept
    consistent with the momentum — use :meth:`update_gamma` after
    changing ``momentum`` by hand, or the ``set_momentum`` helper which
    does it for you.

    Attributes:
        position: Coordinates (x, y, z) [cm].
        momentum: Momentum (px, py, pz) [g*cm/s].
        weight: Number of real particles represented by this macroparticle.
        gamma: Lorentz factor, ``sqrt(1 + |p|^2 / (m c)^2)``.
        type_id: Short integer id into a :class:`ParticleTypeTable`.
    """

    position: FP3 = field(default_factory=FP3)
    momentum: FP3 = field(default_factory=FP3)
    weight: float = 1.0
    gamma: float = 1.0
    type_id: int = 0

    def __post_init__(self) -> None:
        if self.weight < 0.0:
            raise ConfigurationError(f"weight must be >= 0, got {self.weight!r}")
        if self.gamma < 1.0:
            raise ConfigurationError(f"gamma must be >= 1, got {self.gamma!r}")

    def mass(self, table: ParticleTypeTable) -> float:
        """Rest mass [g] via the shared type table."""
        return table.mass_of(self.type_id)

    def charge(self, table: ParticleTypeTable) -> float:
        """Charge [statC] via the shared type table."""
        return table.charge_of(self.type_id)

    def set_momentum(self, momentum: FP3, table: ParticleTypeTable) -> None:
        """Assign a new momentum and refresh the stored gamma."""
        self.momentum = momentum.copy()
        self.update_gamma(table)

    def update_gamma(self, table: ParticleTypeTable) -> None:
        """Recompute ``gamma`` from the current momentum.

        ``gamma = sqrt(1 + |p|^2 / (m c)^2)``.
        """
        mc = self.mass(table) * SPEED_OF_LIGHT
        self.gamma = math.sqrt(1.0 + self.momentum.norm2() / (mc * mc))

    def velocity(self, table: ParticleTypeTable) -> FP3:
        """Velocity ``v = p / (gamma m)`` [cm/s] from the stored gamma."""
        inv = 1.0 / (self.gamma * self.mass(table))
        return self.momentum * inv

    def kinetic_energy(self, table: ParticleTypeTable) -> float:
        """Kinetic energy ``(gamma - 1) m c^2`` [erg]."""
        mc2 = self.mass(table) * SPEED_OF_LIGHT ** 2
        return (self.gamma - 1.0) * mc2

    def copy(self) -> "Particle":
        """Return an independent deep copy."""
        return Particle(self.position.copy(), self.momentum.copy(),
                        self.weight, self.gamma, self.type_id)
