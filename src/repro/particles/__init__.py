"""Particle data structures: type table, single particles, ensembles.

This subpackage mirrors Section 3 of the paper.  Per particle we store a
position and a momentum (3 floating-point components each), a scalar
weight and Lorentz factor gamma, and a short integer type id; mass and
charge are looked up in a shared :class:`~repro.particles.types.ParticleTypeTable`.

Ensembles come in the paper's two memory layouts:

* :class:`~repro.particles.ensemble.ParticleArrayAoS` — array of
  structures, one interleaved record per particle (36 bytes in single
  precision, 72 in double, matching the paper's figures);
* :class:`~repro.particles.ensemble.ParticleArraySoA` — structure of
  arrays, one contiguous array per component.
"""

from .types import ParticleSpecies, ParticleTypeTable, default_type_table
from .particle import Particle
from .proxy import ParticleProxy
from .ensemble import Layout, ParticleEnsemble, ParticleArrayAoS, ParticleArraySoA, make_ensemble
from .initializers import (
    cold_sphere,
    uniform_box,
    maxwellian_momenta,
    paper_benchmark_ensemble,
)
from .sorting import cell_indices, morton_codes, sort_by_cell, sort_by_morton

__all__ = [
    "ParticleSpecies",
    "ParticleTypeTable",
    "default_type_table",
    "Particle",
    "ParticleProxy",
    "Layout",
    "ParticleEnsemble",
    "ParticleArrayAoS",
    "ParticleArraySoA",
    "make_ensemble",
    "cold_sphere",
    "uniform_box",
    "maxwellian_momenta",
    "paper_benchmark_ensemble",
    "cell_indices",
    "morton_codes",
    "sort_by_cell",
    "sort_by_morton",
]
