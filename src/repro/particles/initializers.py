"""Ensemble initializers, including the paper's benchmark setup.

The paper's experiment: electrons initially at rest, distributed
uniformly within a sphere of radius ``0.6 * lambda`` around the focus of
the m-dipole wave (``lambda = 0.9 um``).
:func:`paper_benchmark_ensemble` builds exactly that.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..constants import MICRON
from ..errors import ConfigurationError
from ..fp import Precision
from .ensemble import Layout, ParticleEnsemble, make_ensemble
from .types import ParticleTypeTable

__all__ = ["cold_sphere", "uniform_box", "maxwellian_momenta",
           "paper_benchmark_ensemble", "PAPER_WAVELENGTH", "PAPER_SPHERE_RADIUS"]

#: Wavelength of the paper's m-dipole wave: 0.9 um [cm].
PAPER_WAVELENGTH = 0.9 * MICRON

#: Radius of the initial electron sphere: 0.6 * lambda [cm].
PAPER_SPHERE_RADIUS = 0.6 * PAPER_WAVELENGTH


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform_sphere_positions(n: int, radius: float,
                             center: Tuple[float, float, float] = (0.0, 0.0, 0.0),
                             seed: Optional[int] = None) -> np.ndarray:
    """(N, 3) points uniformly distributed inside a sphere.

    Uses the exact inverse-CDF radial law ``r = R * u^(1/3)`` with an
    isotropic direction, so the density is uniform in volume (plain
    rejection would also work but costs ~1.9x the samples).
    """
    if radius <= 0.0:
        raise ConfigurationError(f"radius must be positive, got {radius!r}")
    rng = _rng(seed)
    directions = rng.normal(size=(n, 3))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    # A standard-normal triple is never exactly zero in practice, but a
    # zero norm would produce NaNs; resample those rows defensively.
    bad = norms[:, 0] == 0.0
    while np.any(bad):
        directions[bad] = rng.normal(size=(int(bad.sum()), 3))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        bad = norms[:, 0] == 0.0
    radii = radius * np.cbrt(rng.uniform(size=(n, 1)))
    return np.asarray(center, dtype=np.float64) + directions / norms * radii


def cold_sphere(n: int, radius: float,
                center: Tuple[float, float, float] = (0.0, 0.0, 0.0),
                layout: Layout = Layout.SOA,
                precision: Precision = Precision.DOUBLE,
                type_id: int = 0,
                weight: float = 1.0,
                type_table: Optional[ParticleTypeTable] = None,
                seed: Optional[int] = None) -> ParticleEnsemble:
    """Ensemble of particles at rest, uniform in a sphere."""
    ensemble = make_ensemble(n, layout, precision, type_table)
    ensemble.type_ids[:] = np.int16(type_id)
    ensemble.component("weight")[:] = weight
    ensemble.set_positions(uniform_sphere_positions(n, radius, center, seed))
    ensemble.set_momenta(np.zeros((n, 3)))
    return ensemble


def uniform_box(n: int,
                lower: Tuple[float, float, float],
                upper: Tuple[float, float, float],
                layout: Layout = Layout.SOA,
                precision: Precision = Precision.DOUBLE,
                type_id: int = 0,
                weight: float = 1.0,
                type_table: Optional[ParticleTypeTable] = None,
                seed: Optional[int] = None) -> ParticleEnsemble:
    """Ensemble of particles at rest, uniform in an axis-aligned box."""
    lo = np.asarray(lower, dtype=np.float64)
    hi = np.asarray(upper, dtype=np.float64)
    if lo.shape != (3,) or hi.shape != (3,):
        raise ConfigurationError("lower/upper must be length-3 coordinates")
    if np.any(hi <= lo):
        raise ConfigurationError(f"upper {upper!r} must exceed lower {lower!r} "
                                 "in every coordinate")
    rng = _rng(seed)
    ensemble = make_ensemble(n, layout, precision, type_table)
    ensemble.type_ids[:] = np.int16(type_id)
    ensemble.component("weight")[:] = weight
    ensemble.set_positions(rng.uniform(lo, hi, size=(n, 3)))
    ensemble.set_momenta(np.zeros((n, 3)))
    return ensemble


def maxwellian_momenta(n: int, temperature: float, mass: float,
                       seed: Optional[int] = None) -> np.ndarray:
    """(N, 3) non-relativistic Maxwellian momenta at ``temperature`` [erg].

    Each component is Gaussian with variance ``m * k_B T`` (temperature
    given directly in energy units, CGS style).  Suitable for thermal
    plasma initial conditions in the PIC examples; for relativistic
    temperatures use a Maxwell-Juettner sampler instead (out of scope
    for the paper's cold benchmark).
    """
    if temperature < 0.0:
        raise ConfigurationError(f"temperature must be >= 0, got {temperature!r}")
    if mass <= 0.0:
        raise ConfigurationError(f"mass must be positive, got {mass!r}")
    rng = _rng(seed)
    sigma = np.sqrt(mass * temperature)
    return rng.normal(scale=sigma, size=(n, 3)) if sigma > 0.0 else np.zeros((n, 3))


def paper_benchmark_ensemble(n: int,
                             layout: Layout = Layout.SOA,
                             precision: Precision = Precision.DOUBLE,
                             type_table: Optional[ParticleTypeTable] = None,
                             seed: Optional[int] = 0) -> ParticleEnsemble:
    """The paper's initial condition: cold electrons in a 0.6-lambda sphere.

    The paper uses ``n = 1e7``; tests and CI use much smaller ``n`` —
    NSPS is per-particle, so the metric is size-independent once the
    working set exceeds cache (which the cost model, not this function,
    accounts for).
    """
    return cold_sphere(n, PAPER_SPHERE_RADIUS, layout=layout,
                       precision=precision, type_id=0,
                       type_table=type_table, seed=seed)
