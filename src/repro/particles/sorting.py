"""Cache-locality particle sorting.

With single-array particle storage (the paper's choice) the array must
be "periodically sorted ... to improve cache locality".  Two orderings
are provided: plain row-major cell index and Morton (Z-order) codes,
which preserve 3-D locality better for large grids.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ConfigurationError
from .ensemble import ParticleEnsemble

__all__ = ["cell_indices", "morton_codes", "sort_by_cell", "sort_by_morton"]


def _cell_coordinates(positions: np.ndarray,
                      origin: Tuple[float, float, float],
                      spacing: Tuple[float, float, float],
                      dims: Tuple[int, int, int]) -> np.ndarray:
    pos = np.asarray(positions, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ConfigurationError(f"positions must be (N, 3), got {pos.shape}")
    org = np.asarray(origin, dtype=np.float64)
    dx = np.asarray(spacing, dtype=np.float64)
    nd = np.asarray(dims, dtype=np.int64)
    if np.any(dx <= 0.0):
        raise ConfigurationError(f"spacing must be positive, got {spacing!r}")
    if np.any(nd <= 0):
        raise ConfigurationError(f"dims must be positive, got {dims!r}")
    cells = np.floor((pos - org) / dx).astype(np.int64)
    # Particles slightly outside the box are clamped to the boundary
    # cells: sorting is a locality optimisation, not a validity check.
    return np.clip(cells, 0, nd - 1)


def cell_indices(positions: np.ndarray,
                 origin: Tuple[float, float, float],
                 spacing: Tuple[float, float, float],
                 dims: Tuple[int, int, int]) -> np.ndarray:
    """Row-major flat cell index of each particle position."""
    cells = _cell_coordinates(positions, origin, spacing, dims)
    nx, ny, nz = (int(d) for d in dims)
    return (cells[:, 0] * ny + cells[:, 1]) * nz + cells[:, 2]


def _part1by2(v: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of ``v`` so consecutive bits are 3 apart."""
    x = v.astype(np.uint64) & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def morton_codes(positions: np.ndarray,
                 origin: Tuple[float, float, float],
                 spacing: Tuple[float, float, float],
                 dims: Tuple[int, int, int]) -> np.ndarray:
    """64-bit Morton (Z-order) code of each particle's cell.

    Supports up to 2^21 cells per axis (21 bits x 3 interleaved into a
    uint64).
    """
    if max(dims) > (1 << 21):
        raise ConfigurationError(
            f"Morton codes support at most 2^21 cells per axis, got {dims!r}")
    cells = _cell_coordinates(positions, origin, spacing, dims)
    return (_part1by2(cells[:, 0]) << np.uint64(2)) \
        | (_part1by2(cells[:, 1]) << np.uint64(1)) \
        | _part1by2(cells[:, 2])


def sort_by_cell(ensemble: ParticleEnsemble,
                 origin: Tuple[float, float, float],
                 spacing: Tuple[float, float, float],
                 dims: Tuple[int, int, int]) -> np.ndarray:
    """Sort the ensemble in place by row-major cell index.

    Returns the permutation that was applied (useful for reordering
    per-particle side arrays such as precalculated fields).
    """
    keys = cell_indices(ensemble.positions(), origin, spacing, dims)
    order = np.argsort(keys, kind="stable")
    ensemble.permute(order)
    return order


def sort_by_morton(ensemble: ParticleEnsemble,
                   origin: Tuple[float, float, float],
                   spacing: Tuple[float, float, float],
                   dims: Tuple[int, int, int]) -> np.ndarray:
    """Sort the ensemble in place by Morton code; returns the permutation."""
    keys = morton_codes(ensemble.positions(), origin, spacing, dims)
    order = np.argsort(keys, kind="stable")
    ensemble.permute(order)
    return order
