"""Particle species table.

The paper stores, per particle, only a short integer *type*; the mass
and charge corresponding to each type live "in a separate table in a
single copy".  :class:`ParticleTypeTable` is that table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..constants import ELECTRON_MASS, ELEMENTARY_CHARGE, PROTON_MASS
from ..errors import ConfigurationError

__all__ = ["ParticleSpecies", "ParticleTypeTable", "default_type_table"]


@dataclass(frozen=True)
class ParticleSpecies:
    """Immutable physical description of one particle species.

    Attributes:
        name: Human-readable species name ("electron", ...).
        mass: Rest mass in grams.
        charge: Charge in statcoulombs (signed).
    """

    name: str
    mass: float
    charge: float

    def __post_init__(self) -> None:
        if self.mass <= 0.0:
            raise ConfigurationError(
                f"species {self.name!r} must have positive mass, got {self.mass!r}")


class ParticleTypeTable:
    """Mapping from short integer type ids to :class:`ParticleSpecies`.

    Type ids are dense small integers (they are stored per particle as
    ``int16``), so the table also exposes vectorized ``masses_of`` /
    ``charges_of`` lookups used by the push kernels.
    """

    MAX_TYPES = np.iinfo(np.int16).max

    def __init__(self) -> None:
        self._species: Dict[int, ParticleSpecies] = {}
        self._by_name: Dict[str, int] = {}
        self._mass_lut = np.zeros(0, dtype=np.float64)
        self._charge_lut = np.zeros(0, dtype=np.float64)
        # Per-dtype (mass, charge) LUT casts, built on first use and
        # invalidated on registration: the push kernels look species
        # constants up in storage precision every step, and casting the
        # table once (O(#species)) beats casting per-particle results
        # (O(N)) on every call.
        self._typed_luts: Dict[np.dtype,
                               Tuple[np.ndarray, np.ndarray]] = {}

    def register(self, species: ParticleSpecies) -> int:
        """Register a species and return its new type id.

        Ids are assigned densely in registration order.  Registering a
        second species with an existing name is an error.
        """
        if species.name in self._by_name:
            raise ConfigurationError(f"species {species.name!r} already registered")
        type_id = len(self._species)
        if type_id > self.MAX_TYPES:
            raise ConfigurationError("type table exceeds int16 capacity")
        self._species[type_id] = species
        self._by_name[species.name] = type_id
        self._rebuild_luts()
        return type_id

    def _rebuild_luts(self) -> None:
        n = len(self._species)
        self._mass_lut = np.array([self._species[i].mass for i in range(n)])
        self._charge_lut = np.array([self._species[i].charge for i in range(n)])
        self._typed_luts.clear()

    def _luts_for(self, dtype) -> Tuple[np.ndarray, np.ndarray]:
        key = np.dtype(dtype)
        luts = self._typed_luts.get(key)
        if luts is None:
            luts = (self._mass_lut.astype(key), self._charge_lut.astype(key))
            self._typed_luts[key] = luts
        return luts

    def __len__(self) -> int:
        return len(self._species)

    def __iter__(self) -> Iterator[ParticleSpecies]:
        return (self._species[i] for i in range(len(self._species)))

    def __getitem__(self, type_id: int) -> ParticleSpecies:
        try:
            return self._species[int(type_id)]
        except KeyError:
            raise ConfigurationError(f"unknown particle type id {type_id!r}") from None

    def id_of(self, name: str) -> int:
        """Return the type id registered under ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigurationError(f"unknown species name {name!r}") from None

    def mass_of(self, type_id: int) -> float:
        """Rest mass [g] of the species with the given id."""
        return self[type_id].mass

    def charge_of(self, type_id: int) -> float:
        """Charge [statC] of the species with the given id."""
        return self[type_id].charge

    def masses_of(self, type_ids: np.ndarray,
                  dtype: Optional[np.dtype] = None) -> np.ndarray:
        """Vectorized mass lookup for an array of type ids.

        ``dtype`` selects a cached cast of the table (storage-precision
        lookups gather from an O(#species) typed LUT instead of casting
        the O(N) result); None keeps the float64 master table.
        """
        self._check_ids(type_ids)
        if dtype is None:
            return self._mass_lut[type_ids]
        return self._luts_for(dtype)[0][type_ids]

    def charges_of(self, type_ids: np.ndarray,
                   dtype: Optional[np.dtype] = None) -> np.ndarray:
        """Vectorized charge lookup for an array of type ids.

        ``dtype`` behaves as in :meth:`masses_of`.
        """
        self._check_ids(type_ids)
        if dtype is None:
            return self._charge_lut[type_ids]
        return self._luts_for(dtype)[1][type_ids]

    def _check_ids(self, type_ids: np.ndarray) -> None:
        ids = np.asarray(type_ids)
        if ids.size and (ids.min() < 0 or ids.max() >= len(self._species)):
            raise ConfigurationError(
                f"type ids out of range [0, {len(self._species)}): "
                f"min={ids.min()}, max={ids.max()}")


def default_type_table() -> ParticleTypeTable:
    """Return a fresh table with the three conventional species.

    Ids: 0 = electron, 1 = positron, 2 = proton.  The paper's benchmark
    uses electrons only, but PIC examples need the ions too.
    """
    table = ParticleTypeTable()
    table.register(ParticleSpecies("electron", ELECTRON_MASS, -ELEMENTARY_CHARGE))
    table.register(ParticleSpecies("positron", ELECTRON_MASS, +ELEMENTARY_CHARGE))
    table.register(ParticleSpecies("proton", PROTON_MASS, +ELEMENTARY_CHARGE))
    return table
