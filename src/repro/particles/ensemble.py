"""Particle ensembles in the paper's two memory layouts (AoS and SoA).

The paper stores the whole ensemble in a single array (no per-cell
lists) and compares two layouts:

* **AoS** — one interleaved record per particle.  Here this is a numpy
  *structured array* whose record size matches the paper exactly
  (36 bytes in single precision, 72 in double, including alignment
  padding).  Component access yields *strided* views, so vectorized
  kernels running on AoS data genuinely perform non-unit-stride memory
  access, as they would in vectorized C++.
* **SoA** — one contiguous numpy array per component.

Both expose the same interface (:class:`ParticleEnsemble`), so every
kernel, field source and diagnostic is written once — the Python
counterpart of Hi-Chi's ``ParticleProxy`` + templates trick.
"""

from __future__ import annotations

import abc
import enum
from typing import Dict, Iterator, Optional, Sequence

import numpy as np

from ..constants import SPEED_OF_LIGHT
from ..errors import ConfigurationError, LayoutError
from ..fp import Precision
from .types import ParticleTypeTable, default_type_table

__all__ = ["Layout", "COMPONENTS", "ParticleEnsemble",
           "ParticleArrayAoS", "ParticleArraySoA", "make_ensemble"]

#: Floating-point components of one particle, in record order.
COMPONENTS = ("x", "y", "z", "px", "py", "pz", "weight", "gamma")

_POSITION = ("x", "y", "z")
_MOMENTUM = ("px", "py", "pz")


class Layout(enum.Enum):
    """Particle memory layout: array-of-structures or structure-of-arrays."""

    AOS = "AoS"
    SOA = "SoA"


def _aos_dtype(precision: Precision) -> np.dtype:
    """Structured dtype of one AoS particle record, alignment included."""
    fp = precision.dtype
    step = precision.itemsize
    names = list(COMPONENTS) + ["type"]
    formats = [fp] * len(COMPONENTS) + [np.int16]
    offsets = [i * step for i in range(len(COMPONENTS))] + [len(COMPONENTS) * step]
    return np.dtype({
        "names": names,
        "formats": formats,
        "offsets": offsets,
        "itemsize": precision.particle_bytes_aligned,
    })


class ParticleEnsemble(abc.ABC):
    """Common interface of AoS and SoA particle storage.

    Component accessors return *writable views* into the underlying
    storage so kernels mutate particles in place; whether those views
    are contiguous is exactly the AoS/SoA distinction.
    """

    def __init__(self, size: int, precision: Precision,
                 type_table: Optional[ParticleTypeTable] = None) -> None:
        if size < 0:
            raise ConfigurationError(f"ensemble size must be >= 0, got {size}")
        if not isinstance(precision, Precision):
            raise ConfigurationError(f"precision must be a Precision, got {precision!r}")
        self._size = int(size)
        self._precision = precision
        self._type_table = type_table if type_table is not None else default_type_table()

    # -- identity ---------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of particles."""
        return self._size

    def __len__(self) -> int:
        return self._size

    @property
    def precision(self) -> Precision:
        """Floating-point precision of the stored components."""
        return self._precision

    @property
    def type_table(self) -> ParticleTypeTable:
        """Shared species table (mass/charge lookup by type id)."""
        return self._type_table

    @property
    @abc.abstractmethod
    def layout(self) -> Layout:
        """Memory layout of this ensemble."""

    @property
    @abc.abstractmethod
    def nbytes(self) -> int:
        """Bytes of particle storage actually allocated."""

    # -- raw component access ----------------------------------------------

    @abc.abstractmethod
    def component(self, name: str) -> np.ndarray:
        """Writable 1-D view of one floating-point component.

        ``name`` is one of :data:`COMPONENTS`.  AoS views are strided,
        SoA views are contiguous.
        """

    @property
    @abc.abstractmethod
    def type_ids(self) -> np.ndarray:
        """Writable int16 view of the per-particle type ids."""

    def _check_component(self, name: str) -> None:
        if name not in COMPONENTS:
            raise LayoutError(f"unknown particle component {name!r}; "
                              f"expected one of {COMPONENTS}")

    # -- convenience bulk accessors (copies) --------------------------------

    def positions(self) -> np.ndarray:
        """(N, 3) float64 copy of the particle positions."""
        return np.stack([self.component(c).astype(np.float64)
                         for c in _POSITION], axis=1)

    def momenta(self) -> np.ndarray:
        """(N, 3) float64 copy of the particle momenta."""
        return np.stack([self.component(c).astype(np.float64)
                         for c in _MOMENTUM], axis=1)

    def set_positions(self, positions: np.ndarray) -> None:
        """Overwrite positions from an (N, 3) array (cast to the ensemble dtype)."""
        pos = self._check_vec3(positions, "positions")
        for axis, name in enumerate(_POSITION):
            self.component(name)[:] = pos[:, axis]

    def set_momenta(self, momenta: np.ndarray, update_gamma: bool = True) -> None:
        """Overwrite momenta from an (N, 3) array.

        Recomputes the stored gamma unless ``update_gamma`` is False.
        """
        mom = self._check_vec3(momenta, "momenta")
        for axis, name in enumerate(_MOMENTUM):
            self.component(name)[:] = mom[:, axis]
        if update_gamma:
            self.update_gammas()

    def _check_vec3(self, array: np.ndarray, what: str) -> np.ndarray:
        arr = np.asarray(array, dtype=np.float64)
        if arr.shape != (self._size, 3):
            raise LayoutError(f"{what} must have shape ({self._size}, 3), "
                              f"got {arr.shape}")
        return arr

    # -- physics helpers ----------------------------------------------------

    def masses(self, dtype=None) -> np.ndarray:
        """Per-particle rest masses [g] (float64, or ``dtype``).

        A ``dtype`` gathers from the type table's cached typed LUT —
        the storage-precision path the kernels use every step.
        """
        return self._type_table.masses_of(self.type_ids, dtype=dtype)

    def charges(self, dtype=None) -> np.ndarray:
        """Per-particle charges [statC] (float64, or ``dtype``)."""
        return self._type_table.charges_of(self.type_ids, dtype=dtype)

    def update_gammas(self) -> None:
        """Recompute the stored gamma component from the momenta.

        ``gamma = sqrt(1 + |p|^2 / (m c)^2)``, evaluated in the storage
        precision (as the kernels do).
        """
        dtype = self._precision.dtype
        mc = (self.masses() * SPEED_OF_LIGHT).astype(dtype)
        px = self.component("px")
        py = self.component("py")
        pz = self.component("pz")
        p2 = px * px + py * py + pz * pz
        self.component("gamma")[:] = np.sqrt(
            dtype.type(1.0) + p2 / (mc * mc))

    def velocities(self) -> np.ndarray:
        """(N, 3) float64 velocities ``p / (gamma m)`` using the stored gamma."""
        inv = 1.0 / (self.component("gamma").astype(np.float64) * self.masses())
        return self.momenta() * inv[:, None]

    def kinetic_energies(self) -> np.ndarray:
        """Per-particle kinetic energy ``(gamma - 1) m c^2`` [erg]."""
        gamma = self.component("gamma").astype(np.float64)
        return (gamma - 1.0) * self.masses() * SPEED_OF_LIGHT ** 2

    def total_kinetic_energy(self) -> float:
        """Weighted total kinetic energy of the ensemble [erg]."""
        weights = self.component("weight").astype(np.float64)
        return float(np.sum(weights * self.kinetic_energies()))

    # -- structural operations ----------------------------------------------

    @property
    def components_dict(self) -> Dict[str, np.ndarray]:
        """Mapping of every floating-point component name to its view."""
        return {name: self.component(name) for name in COMPONENTS}

    def to_layout(self, layout: Layout) -> "ParticleEnsemble":
        """Return a copy of this ensemble in the requested layout.

        Returns a copy even when the layout already matches, so callers
        can mutate the result freely.
        """
        cls = ParticleArrayAoS if layout is Layout.AOS else ParticleArraySoA
        out = cls(self._size, self._precision, self._type_table)
        for name in COMPONENTS:
            out.component(name)[:] = self.component(name)
        out.type_ids[:] = self.type_ids
        return out

    def copy(self) -> "ParticleEnsemble":
        """Deep copy preserving the layout."""
        return self.to_layout(self.layout)

    def permute(self, order: np.ndarray) -> None:
        """Reorder particles in place by the index array ``order``.

        ``order`` must be a permutation of ``range(size)`` (used by the
        cache-locality sorting pass described in Section 3).
        """
        idx = np.asarray(order)
        if idx.shape != (self._size,):
            raise LayoutError(f"permutation must have shape ({self._size},), "
                              f"got {idx.shape}")
        if not np.array_equal(np.sort(idx), np.arange(self._size)):
            raise LayoutError("order is not a permutation of the particle indices")
        for name in COMPONENTS:
            view = self.component(name)
            view[:] = view[idx]
        ids = self.type_ids
        ids[:] = ids[idx]

    def select(self, mask: np.ndarray) -> "ParticleEnsemble":
        """Return a new ensemble containing only particles where ``mask`` is True."""
        sel = np.asarray(mask, dtype=bool)
        if sel.shape != (self._size,):
            raise LayoutError(f"mask must have shape ({self._size},), got {sel.shape}")
        cls = type(self)
        out = cls(int(sel.sum()), self._precision, self._type_table)
        for name in COMPONENTS:
            out.component(name)[:] = self.component(name)[sel]
        out.type_ids[:] = self.type_ids[sel]
        return out

    @staticmethod
    def concatenate(ensembles: Sequence["ParticleEnsemble"]
                    ) -> "ParticleEnsemble":
        """Join ensembles into one (layout/precision of the first).

        All inputs must share layout, precision and type table —
        concatenation is for merging streams of the *same* kind of
        particles (e.g. injected batches), not for mixing species
        tables.
        """
        if not ensembles:
            raise LayoutError("concatenate needs at least one ensemble")
        first = ensembles[0]
        for other in ensembles[1:]:
            if other.layout is not first.layout:
                raise LayoutError(
                    f"cannot concatenate {other.layout.value} into "
                    f"{first.layout.value}")
            if other.precision is not first.precision:
                raise LayoutError(
                    f"cannot concatenate {other.precision.value} into "
                    f"{first.precision.value}")
            if other.type_table is not first.type_table:
                raise LayoutError(
                    "ensembles must share one ParticleTypeTable")
        total = sum(e.size for e in ensembles)
        out = make_ensemble(total, first.layout, first.precision,
                            first.type_table)
        offset = 0
        for ensemble in ensembles:
            end = offset + ensemble.size
            for name in COMPONENTS:
                out.component(name)[offset:end] = ensemble.component(name)
            out.type_ids[offset:end] = ensemble.type_ids
            offset = end
        return out

    def __getitem__(self, index: int) -> "ParticleProxy":
        from .proxy import ParticleProxy
        return ParticleProxy(self, index)

    def __iter__(self) -> Iterator["ParticleProxy"]:
        for i in range(self._size):
            yield self[i]

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_arrays(cls, positions: np.ndarray, momenta: np.ndarray,
                    weights: Optional[np.ndarray] = None,
                    type_ids: Optional[np.ndarray] = None,
                    precision: Precision = Precision.DOUBLE,
                    type_table: Optional[ParticleTypeTable] = None,
                    layout: Optional[Layout] = None,
                    ) -> "ParticleEnsemble":
        """Build an ensemble from plain (N, 3) position/momentum arrays.

        Weights default to 1, type ids to 0 (electron in the default
        table).  Gamma is computed from the momenta.  When called on the
        abstract base class, ``layout`` selects the storage (default
        SoA); when called on a concrete subclass, that subclass wins.
        """
        pos = np.asarray(positions, dtype=np.float64)
        mom = np.asarray(momenta, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise LayoutError(f"positions must be (N, 3), got {pos.shape}")
        if mom.shape != pos.shape:
            raise LayoutError(f"momenta must match positions shape {pos.shape}, "
                              f"got {mom.shape}")
        n = pos.shape[0]
        if cls is ParticleEnsemble:
            concrete = ParticleArrayAoS if layout is Layout.AOS \
                else ParticleArraySoA
        else:
            if layout is not None:
                raise LayoutError(
                    f"layout= is only valid on ParticleEnsemble.from_arrays; "
                    f"{cls.__name__} fixes the layout already")
            concrete = cls
        ensemble = concrete(n, precision, type_table)
        if type_ids is not None:
            ensemble.type_ids[:] = np.asarray(type_ids, dtype=np.int16)
        if weights is not None:
            ensemble.component("weight")[:] = np.asarray(weights)
        else:
            ensemble.component("weight")[:] = 1.0
        ensemble.set_positions(pos)
        ensemble.set_momenta(mom)
        return ensemble


class ParticleArrayAoS(ParticleEnsemble):
    """Array-of-structures ensemble: one structured record per particle."""

    def __init__(self, size: int, precision: Precision = Precision.DOUBLE,
                 type_table: Optional[ParticleTypeTable] = None) -> None:
        super().__init__(size, precision, type_table)
        self._records = np.zeros(self._size, dtype=_aos_dtype(precision))
        self._records["weight"] = 1.0
        self._records["gamma"] = 1.0

    @property
    def layout(self) -> Layout:
        return Layout.AOS

    @property
    def records(self) -> np.ndarray:
        """The underlying structured record array (one element per particle)."""
        return self._records

    @property
    def nbytes(self) -> int:
        return int(self._records.nbytes)

    def component(self, name: str) -> np.ndarray:
        self._check_component(name)
        return self._records[name]

    @property
    def type_ids(self) -> np.ndarray:
        return self._records["type"]


class ParticleArraySoA(ParticleEnsemble):
    """Structure-of-arrays ensemble: one contiguous array per component."""

    def __init__(self, size: int, precision: Precision = Precision.DOUBLE,
                 type_table: Optional[ParticleTypeTable] = None) -> None:
        super().__init__(size, precision, type_table)
        dtype = precision.dtype
        self._arrays: Dict[str, np.ndarray] = {
            name: np.zeros(self._size, dtype=dtype) for name in COMPONENTS
        }
        self._arrays["weight"][:] = 1.0
        self._arrays["gamma"][:] = 1.0
        self._type_ids = np.zeros(self._size, dtype=np.int16)

    @property
    def layout(self) -> Layout:
        return Layout.SOA

    @property
    def nbytes(self) -> int:
        per_fp = sum(a.nbytes for a in self._arrays.values())
        return int(per_fp + self._type_ids.nbytes)

    def component(self, name: str) -> np.ndarray:
        self._check_component(name)
        return self._arrays[name]

    @property
    def type_ids(self) -> np.ndarray:
        return self._type_ids


def make_ensemble(size: int, layout: Layout,
                  precision: Precision = Precision.DOUBLE,
                  type_table: Optional[ParticleTypeTable] = None,
                  ) -> ParticleEnsemble:
    """Factory: build an empty ensemble with the given layout/precision."""
    if layout is Layout.AOS:
        return ParticleArrayAoS(size, precision, type_table)
    if layout is Layout.SOA:
        return ParticleArraySoA(size, precision, type_table)
    raise ConfigurationError(f"unknown layout {layout!r}")
