"""Particle proxy: a reference view of one particle inside an ensemble.

Hi-Chi's ``ParticleProxy`` "completely repeats the functionality of the
Particle class, but stores references to objects", letting the same
templated code run over either storage layout.  This is the Python
equivalent: attribute access reads and writes through to the owning
:class:`~repro.particles.ensemble.ParticleEnsemble`, whatever its
layout.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..constants import SPEED_OF_LIGHT
from ..errors import LayoutError
from ..fp import FP3
from .particle import Particle

if TYPE_CHECKING:
    from .ensemble import ParticleEnsemble

__all__ = ["ParticleProxy"]


class ParticleProxy:
    """Read/write view of particle ``index`` of ``ensemble``.

    The proxy holds no particle data of its own.  Vector properties
    (``position``, ``momentum``) return fresh :class:`FP3` copies;
    assigning to them writes back into the ensemble storage.
    """

    __slots__ = ("_ensemble", "_index")

    def __init__(self, ensemble: "ParticleEnsemble", index: int) -> None:
        idx = int(index)
        if not 0 <= idx < ensemble.size:
            raise LayoutError(
                f"particle index {index} out of range [0, {ensemble.size})")
        self._ensemble = ensemble
        self._index = idx

    @property
    def ensemble(self) -> "ParticleEnsemble":
        """The ensemble this proxy points into."""
        return self._ensemble

    @property
    def index(self) -> int:
        """Index of the particle within the ensemble."""
        return self._index

    # -- vector components -------------------------------------------------

    @property
    def position(self) -> FP3:
        e, i = self._ensemble, self._index
        return FP3(float(e.component("x")[i]),
                   float(e.component("y")[i]),
                   float(e.component("z")[i]))

    @position.setter
    def position(self, value: FP3) -> None:
        e, i = self._ensemble, self._index
        e.component("x")[i] = value.x
        e.component("y")[i] = value.y
        e.component("z")[i] = value.z

    @property
    def momentum(self) -> FP3:
        e, i = self._ensemble, self._index
        return FP3(float(e.component("px")[i]),
                   float(e.component("py")[i]),
                   float(e.component("pz")[i]))

    @momentum.setter
    def momentum(self, value: FP3) -> None:
        e, i = self._ensemble, self._index
        e.component("px")[i] = value.x
        e.component("py")[i] = value.y
        e.component("pz")[i] = value.z

    # -- scalar components ---------------------------------------------------

    @property
    def weight(self) -> float:
        return float(self._ensemble.component("weight")[self._index])

    @weight.setter
    def weight(self, value: float) -> None:
        self._ensemble.component("weight")[self._index] = value

    @property
    def gamma(self) -> float:
        return float(self._ensemble.component("gamma")[self._index])

    @gamma.setter
    def gamma(self, value: float) -> None:
        self._ensemble.component("gamma")[self._index] = value

    @property
    def type_id(self) -> int:
        return int(self._ensemble.type_ids[self._index])

    @type_id.setter
    def type_id(self, value: int) -> None:
        self._ensemble.type_ids[self._index] = value

    # -- physics (same API as Particle) ---------------------------------------

    @property
    def mass(self) -> float:
        """Rest mass [g] via the ensemble's type table."""
        return self._ensemble.type_table.mass_of(self.type_id)

    @property
    def charge(self) -> float:
        """Charge [statC] via the ensemble's type table."""
        return self._ensemble.type_table.charge_of(self.type_id)

    def update_gamma(self) -> None:
        """Recompute the stored gamma from the current momentum."""
        mc = self.mass * SPEED_OF_LIGHT
        self.gamma = math.sqrt(1.0 + self.momentum.norm2() / (mc * mc))

    def velocity(self) -> FP3:
        """Velocity ``p / (gamma m)`` [cm/s]."""
        return self.momentum * (1.0 / (self.gamma * self.mass))

    def kinetic_energy(self) -> float:
        """Kinetic energy ``(gamma - 1) m c^2`` [erg]."""
        return (self.gamma - 1.0) * self.mass * SPEED_OF_LIGHT ** 2

    # -- conversion ------------------------------------------------------------

    def to_particle(self) -> Particle:
        """Materialise an owning :class:`Particle` copy of this view."""
        return Particle(self.position, self.momentum,
                        self.weight, self.gamma, self.type_id)

    def assign(self, particle: Particle) -> None:
        """Copy all fields of ``particle`` into the ensemble slot."""
        self.position = particle.position
        self.momentum = particle.momentum
        self.weight = particle.weight
        self.gamma = particle.gamma
        self.type_id = particle.type_id

    def __repr__(self) -> str:
        return (f"ParticleProxy(index={self._index}, position={self.position}, "
                f"momentum={self.momentum}, gamma={self.gamma:.6g})")
