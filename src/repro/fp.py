"""Floating-point precision abstraction (``FP``) and 3-vectors (``FP3``).

The Hi-Chi C++ code abstracts its floating-point type as ``FP`` (either
``float`` or ``double``, selected at build time) and uses an ``FP3``
3-component vector throughout.  This module provides the Python
equivalents:

* :class:`Precision` — the single/double switch.  Vectorized kernels
  receive it to select a numpy dtype; the simulated cost model receives
  it to account for per-particle byte footprints.
* :class:`FP3` — a small scalar 3-vector used by the *reference* (scalar,
  particle-at-a-time) implementations, mirroring the C++ data structures
  one-to-one so that the scalar Boris pusher reads like the paper's
  listing.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .errors import ConfigurationError

__all__ = ["Precision", "FP3"]


class Precision(enum.Enum):
    """Floating-point precision of particle data and kernels.

    The member values match the column labels of the paper's Table 2
    ("float" / "double").
    """

    SINGLE = "float"
    DOUBLE = "double"

    @property
    def dtype(self) -> np.dtype:
        """numpy dtype used for particle components at this precision."""
        return np.dtype(np.float32 if self is Precision.SINGLE else np.float64)

    @property
    def itemsize(self) -> int:
        """Bytes per scalar component (4 or 8)."""
        return int(self.dtype.itemsize)

    @property
    def particle_bytes(self) -> int:
        """Unaligned bytes of one ``Particle`` record.

        Position (3 FP) + momentum (3 FP) + weight (FP) + gamma (FP)
        + type (int16): 34 bytes in single precision, 66 in double —
        exactly the figures in Section 3 of the paper.
        """
        return 8 * self.itemsize + 2

    @property
    def particle_bytes_aligned(self) -> int:
        """Bytes of one ``Particle`` record after alignment padding.

        36 bytes in single precision and 72 in double, matching the
        paper (alignment to the FP size).
        """
        size = self.particle_bytes
        align = self.itemsize
        return ((size + align - 1) // align) * align

    @property
    def epsilon(self) -> float:
        """Machine epsilon of the underlying dtype."""
        return float(np.finfo(self.dtype).eps)

    @classmethod
    def from_dtype(cls, dtype: np.dtype | type) -> "Precision":
        """Return the precision matching a numpy ``dtype``.

        Raises :class:`ConfigurationError` for anything that is not
        float32 or float64.
        """
        dt = np.dtype(dtype)
        if dt == np.float32:
            return cls.SINGLE
        if dt == np.float64:
            return cls.DOUBLE
        raise ConfigurationError(f"unsupported floating-point dtype: {dt}")


@dataclass
class FP3:
    """A mutable 3-component vector of Python floats.

    Mirrors Hi-Chi's ``FP3``.  Used by the scalar reference kernels where
    clarity beats speed; the production kernels operate on numpy arrays.
    """

    x: float = 0.0
    y: float = 0.0
    z: float = 0.0

    def __add__(self, other: "FP3") -> "FP3":
        return FP3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "FP3") -> "FP3":
        return FP3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __neg__(self) -> "FP3":
        return FP3(-self.x, -self.y, -self.z)

    def __mul__(self, scalar: float) -> "FP3":
        return FP3(self.x * scalar, self.y * scalar, self.z * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "FP3":
        return FP3(self.x / scalar, self.y / scalar, self.z / scalar)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
        yield self.z

    def dot(self, other: "FP3") -> float:
        """Scalar product."""
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "FP3") -> "FP3":
        """Vector product ``self x other``."""
        return FP3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def norm(self) -> float:
        """Euclidean length."""
        return math.sqrt(self.dot(self))

    def norm2(self) -> float:
        """Squared Euclidean length."""
        return self.dot(self)

    def as_array(self, dtype: np.dtype | type = np.float64) -> np.ndarray:
        """Return a length-3 numpy array copy of this vector."""
        return np.array([self.x, self.y, self.z], dtype=dtype)

    @classmethod
    def from_array(cls, array: "np.ndarray | tuple | list") -> "FP3":
        """Build an :class:`FP3` from any length-3 sequence."""
        x, y, z = (float(v) for v in array)
        return cls(x, y, z)

    def copy(self) -> "FP3":
        """Return an independent copy."""
        return FP3(self.x, self.y, self.z)
