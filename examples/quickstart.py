"""Quickstart: push electrons through the paper's m-dipole wave.

Reproduces the paper's benchmark physics at laptop scale: electrons
initially at rest in a 0.6-lambda sphere, accelerated by the standing
0.1-PW magnetic-dipole wave (eqs. 14-15 of the paper).

Run:  python examples/quickstart.py
"""

import math

import repro


def main() -> None:
    # The benchmark field: P = 0.1 PW, omega = 2.1e15 1/s (0.9 um).
    wave = repro.MDipoleWave()
    print(f"wave: lambda = {wave.wavelength / 1e-4:.2f} um, "
          f"A0 = {wave.amplitude:.3e} statvolt/cm")

    # The benchmark ensemble (paper: 1e7 particles; 20k is plenty here).
    electrons = repro.paper_benchmark_ensemble(
        20_000, layout=repro.Layout.SOA, precision=repro.Precision.DOUBLE)
    print(f"ensemble: {electrons.size} electrons, {electrons.layout.value} "
          f"layout, {electrons.nbytes / 1e6:.1f} MB")

    # Leapfrog setup, then 200 Boris steps of T/100 each (2 periods).
    period = 2.0 * math.pi / wave.omega
    dt = period / 100.0
    repro.setup_leapfrog(electrons, wave, dt)
    repro.advance(electrons, wave, dt, steps=200)

    gamma = electrons.component("gamma")
    radii = (electrons.positions() ** 2).sum(axis=1) ** 0.5
    print(f"after 2 optical periods: max gamma = {gamma.max():.1f}, "
          f"mean gamma = {gamma.mean():.2f}")
    print(f"furthest particle at r = {radii.max() / wave.wavelength:.2f} "
          f"lambda from the focus")


if __name__ == "__main__":
    main()
