"""Two-stream instability: the classic self-consistent PIC validation.

Two cold counter-streaming electron beams are unstable: any density
ripple grows exponentially at a rate set by the plasma frequency, until
the beams trap each other and the field energy saturates.  Reproducing
the linear growth rate exercises every part of the PIC loop at once —
field solve, interpolation, push and charge-conserving deposition must
all be consistent or the rate comes out wrong.

For symmetric cold beams (+-v0, each carrying half the density) the
fastest-growing mode sits at ``k v0 = sqrt(3/8) omega_p`` and grows at
``omega_p / (2 sqrt(2)) ~ 0.354 omega_p``.

The run uses the FFT-based field solver: free of the Courant limit, the
time step is set by the physics (a fraction of the plasma period)
instead of the grid light-crossing time — ~40x fewer steps than FDTD
would need here.

Run:  python examples/two_stream_instability.py
"""

import math

import numpy as np

import repro
from repro.constants import ELECTRON_MASS, ELEMENTARY_CHARGE, SPEED_OF_LIGHT
from repro.fields import YeeGrid
from repro.pic import EnergyHistory, PicSimulation, plasma_frequency

THEORY_RATE = 1.0 / (2.0 * math.sqrt(2.0))      # ~0.354 omega_p


def build_beams(grid, box_length, v0, density, particles_per_cell, seed=0):
    """Two quiet counter-streaming beams with a tiny seed ripple."""
    rng = np.random.default_rng(seed)
    n_per_beam = grid.dims[0] * particles_per_cell
    gamma0 = 1.0 / math.sqrt(1.0 - (v0 / SPEED_OF_LIGHT) ** 2)
    positions, momenta = [], []
    for sign in (+1, -1):
        xs = (np.arange(n_per_beam) + 0.5) * box_length / n_per_beam
        xs = xs + 1.0e-3 * box_length * np.sin(
            2.0 * math.pi * xs / box_length) * sign
        ys = rng.uniform(0.0, grid.dims[1] * grid.spacing[1], n_per_beam)
        zs = rng.uniform(0.0, grid.dims[2] * grid.spacing[2], n_per_beam)
        p = np.zeros((n_per_beam, 3))
        p[:, 0] = sign * gamma0 * ELECTRON_MASS * v0
        positions.append(np.stack([xs, ys, zs], axis=1))
        momenta.append(p)
    positions = np.concatenate(positions)
    momenta = np.concatenate(momenta)
    n = positions.shape[0]
    weight = density * grid.cell_volume * grid.num_cells / n
    return repro.ParticleEnsemble.from_arrays(
        positions, momenta, weights=np.full(n, weight))


def run(density=1.0e18, v0_fraction=0.2, cells=32, particles_per_cell=32,
        periods=15.0, seed=0):
    """Run the instability; returns (times, field energies, omega_p)."""
    omega_p = plasma_frequency(density, ELECTRON_MASS, ELEMENTARY_CHARGE)
    v0 = v0_fraction * SPEED_OF_LIGHT
    # Box resonant with the fastest-growing mode: k L = 2 pi.
    k_fastest = math.sqrt(3.0 / 8.0) * omega_p / v0
    box_length = 2.0 * math.pi / k_fastest
    dx = box_length / cells
    grid = YeeGrid((0.0, 0.0, 0.0), (dx, dx, dx), (cells, 2, 2))
    electrons = build_beams(grid, box_length, v0, density,
                            particles_per_cell, seed)
    dt = 0.1 / omega_p                     # physics-limited, super-CFL
    simulation = PicSimulation(grid, electrons, dt,
                               field_solver="spectral")
    history = EnergyHistory()
    steps = int(periods * 2.0 * math.pi / omega_p / dt)
    simulation.run(steps, energy_history=history)
    return np.asarray(history.times), np.asarray(history.field), omega_p


def fit_growth_rate(times, field_energy):
    """Exponential growth rate of the field amplitude (not energy)."""
    peak = field_energy.max()
    before_peak = np.arange(field_energy.size) < field_energy.argmax()
    window = (field_energy > 1.0e-4 * peak) & (field_energy < 0.05 * peak) \
        & before_peak
    slope = np.polyfit(times[window], np.log(field_energy[window]), 1)[0]
    return slope / 2.0                      # energy ~ amplitude^2


def main() -> None:
    times, field_energy, omega_p = run()
    rate = fit_growth_rate(times, field_energy)
    growth = field_energy.max() / field_energy[1]
    print("two-stream instability (cold symmetric beams, v0 = 0.2c):")
    print(f"  field energy grew by a factor {growth:.1e} before saturating")
    print(f"  measured growth rate: {rate / omega_p:.3f} omega_p")
    print(f"  cold-beam theory:     {THEORY_RATE:.3f} omega_p "
          f"({100 * abs(rate / omega_p - THEORY_RATE) / THEORY_RATE:.0f}% "
          f"off at this resolution)")

    # Crude saturation picture: energy history on a log scale.
    samples = np.linspace(0, len(times) - 1, 16).astype(int)
    floor = field_energy.max() * 1e-8
    for index in samples:
        level = max(field_energy[index], floor)
        bar = "#" * int(4 * math.log10(level / floor))
        print(f"  t = {times[index] * omega_p / (2 * math.pi):5.1f} T_p  "
              f"{bar}")


if __name__ == "__main__":
    main()
