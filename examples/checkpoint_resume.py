"""Checkpoint and resume a long push (and a whole PIC simulation).

Long laser-plasma runs checkpoint their state; this example shows the
library's *step-granular* checkpoint API — a
:class:`repro.resilience.Checkpointer` writing ``.npz`` checkpoints at
a fixed step cadence — and verifies that a run resumed from the latest
checkpoint reproduces the uninterrupted one to machine precision
(bit for bit, in fact).  The same guarantee is what lets the
resilience layer's device-loss recovery replay from a checkpoint (see
``docs/RESILIENCE.md``).

Run:  python examples/checkpoint_resume.py
"""

import math
import tempfile
from pathlib import Path

import numpy as np

import repro
from repro import io
from repro.fields import UniformField, YeeGrid
from repro.pic import PicSimulation, max_stable_dt
from repro.resilience import Checkpointer


def push_with_checkpoints(workdir: Path) -> None:
    """A push loop checkpointed every 10 steps, then resumed from disk."""
    wave = repro.MDipoleWave()
    dt = 2.0 * math.pi / wave.omega / 100.0
    total_steps = 60

    def drive(ensemble, from_step, to_step, checkpointer=None):
        # One advance() call per step, with the evaluation time
        # recomputed as (step * dt) each time — the schedule a
        # checkpointed driver replays bit-identically, because a
        # restored run re-derives exactly the same products.
        for step in range(from_step + 1, to_step + 1):
            repro.advance(ensemble, wave, dt, 1,
                          start_time=(step - 1) * dt)
            if checkpointer is not None:
                checkpointer.maybe_save_push(step, ensemble, step * dt)

    # The uninterrupted reference run.
    reference = repro.paper_benchmark_ensemble(5_000, seed=42)
    repro.setup_leapfrog(reference, wave, dt)
    drive(reference, 0, total_steps)

    # The same run, checkpointing as it goes — "crashing" at step 55,
    # after the step-50 checkpoint but before the end.
    checkpointer = Checkpointer(workdir / "push", every=10, keep=3)
    ensemble = repro.paper_benchmark_ensemble(5_000, seed=42)
    repro.setup_leapfrog(ensemble, wave, dt)
    drive(ensemble, 0, 55, checkpointer)
    print(f"checkpointed steps {checkpointer.steps_on_disk()} "
          f"(keep={checkpointer.keep} of every={checkpointer.every})")

    # ... now pretend the process died and resume from the latest file.
    step, time, resumed = checkpointer.load_push()
    assert time == step * dt    # the saved clock restores exactly
    print(f"restored step {step} at t = {time:.3e} s")
    drive(resumed, step, total_steps)

    exact = np.array_equal(resumed.positions(), reference.positions()) \
        and np.array_equal(resumed.momenta(), reference.momenta())
    print(f"resumed-from-disk matches uninterrupted run bit-for-bit: "
          f"{exact}")
    assert exact, "checkpoint resume drifted from the reference run"


def pic_with_checkpoints(workdir: Path) -> None:
    """A whole PIC simulation checkpointed via run(checkpointer=...)."""
    def build():
        grid = YeeGrid((0.0, 0.0, 0.0), (1.0e-3,) * 3, (8, 8, 8))
        grid.fill_from_source(UniformField(b=(0.0, 0.0, 1.0e4)), 0.0)
        rng = np.random.default_rng(7)
        n = 64
        positions = rng.random((n, 3)) * 8.0e-3
        momenta = rng.standard_normal((n, 3)) * 1.0e-23
        ensemble = repro.ParticleEnsemble.from_arrays(positions, momenta)
        dt = max_stable_dt(grid.spacing, 0.9)
        return PicSimulation(grid, ensemble, dt, deposition="direct")

    total_steps = 12
    reference = build()
    reference.run(total_steps)

    checkpointer = Checkpointer(workdir / "pic", every=4, keep=2)
    interrupted = build()
    interrupted.run(8, checkpointer=checkpointer)   # "crash" after step 8

    resumed = checkpointer.load_simulation()
    print(f"restored PIC simulation at step {resumed.step_count}, "
          f"t = {resumed.time:.3e} s")
    resumed.run(total_steps - resumed.step_count)

    exact = all(
        np.array_equal(resumed.grid.fields[c], reference.grid.fields[c])
        for c in reference.grid.fields)
    exact = exact and np.array_equal(resumed.ensembles[0].positions(),
                                     reference.ensembles[0].positions())
    print(f"resumed PIC run matches uninterrupted fields and particles "
          f"bit-for-bit: {exact}")
    assert exact, "PIC checkpoint resume drifted from the reference run"


def grid_round_trip(workdir: Path) -> None:
    wave = repro.MDipoleWave()
    spacing = wave.wavelength / 8.0
    grid = YeeGrid((-2 * spacing,) * 3, (spacing,) * 3, (4, 4, 4))
    grid.fill_from_source(wave, t=0.3e-15)
    path = workdir / "fields.npz"
    io.save_grid(path, grid, time=0.3e-15)
    loaded, time = io.load_grid(path)
    same = all(np.array_equal(loaded.fields[c], grid.fields[c])
               for c in grid.fields)
    print(f"grid snapshot at t = {time:.2e} s restored exactly: {same}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        push_with_checkpoints(workdir)
        pic_with_checkpoints(workdir)
        grid_round_trip(workdir)


if __name__ == "__main__":
    main()
