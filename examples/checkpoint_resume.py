"""Checkpoint and resume a long push (and a PIC field state).

Long laser-plasma runs checkpoint their state; this example shows the
library's ``.npz`` checkpointing round trip and verifies that a resumed
simulation reproduces the uninterrupted one bit for bit.

Run:  python examples/checkpoint_resume.py
"""

import math
import tempfile
from pathlib import Path

import numpy as np

import repro
from repro import io
from repro.fields import YeeGrid


def push_with_checkpoint(workdir: Path) -> None:
    wave = repro.MDipoleWave()
    dt = 2.0 * math.pi / wave.omega / 100.0
    total_steps = 60
    half = total_steps // 2

    # Reference: a run paused at the halfway point and continued in
    # memory.  (Pausing itself changes nothing; only the time-origin
    # arithmetic must match, so we compare resume-from-disk against
    # resume-from-memory.)
    reference = repro.paper_benchmark_ensemble(5_000, seed=42)
    repro.setup_leapfrog(reference, wave, dt)
    repro.advance(reference, wave, dt, half)

    # Checkpoint the same state to disk ...
    checkpoint = workdir / "electrons.npz"
    io.save_ensemble(checkpoint, reference)
    print(f"saved {reference.size} particles "
          f"({checkpoint.stat().st_size / 1024:.0f} KiB compressed)")

    # ... continue both, one from memory and one from the file.
    repro.advance(reference, wave, dt, total_steps - half,
                  start_time=half * dt)
    resumed = io.load_ensemble(checkpoint)
    repro.advance(resumed, wave, dt, total_steps - half,
                  start_time=half * dt)

    exact = np.array_equal(resumed.positions(), reference.positions()) \
        and np.array_equal(resumed.momenta(), reference.momenta())
    print(f"resumed-from-disk matches resumed-from-memory bit-for-bit: "
          f"{exact}")


def grid_round_trip(workdir: Path) -> None:
    wave = repro.MDipoleWave()
    spacing = wave.wavelength / 8.0
    grid = YeeGrid((-2 * spacing,) * 3, (spacing,) * 3, (4, 4, 4))
    grid.fill_from_source(wave, t=0.3e-15)
    path = workdir / "fields.npz"
    io.save_grid(path, grid, time=0.3e-15)
    loaded, time = io.load_grid(path)
    same = all(np.array_equal(loaded.fields[c], grid.fields[c])
               for c in grid.fields)
    print(f"grid snapshot at t = {time:.2e} s restored exactly: {same}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        push_with_checkpoint(workdir)
        grid_round_trip(workdir)


if __name__ == "__main__":
    main()
