"""Tour of the simulated oneAPI runtime: layouts, runtimes, devices.

Runs the *same* Boris kernel through the simulated DPC++ runtime in
every configuration the paper measures — {AoS, SoA} x {OpenMP, DPC++,
DPC++ NUMA} on the 2x Xeon 8260L node and DPC++ on both Intel GPUs —
and prints the modelled NSPS next to the paper's value.  Also times the
real numpy kernels on this host for an honest measured baseline.

Run:  python examples/layout_and_devices.py
"""

from repro.bench import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    measure_real_nsps,
    paper_time_step,
    paper_wave,
)
from repro.bench.harness import model_push_nsps
from repro.bench.scenarios import BenchmarkCase, paper_ensemble
from repro.fp import Precision
from repro.particles import Layout


def modelled_tour() -> None:
    print("modelled NSPS for the paper's configurations "
          "(precalculated fields, single precision):")
    print(f"{'configuration':32s} {'model':>7s} {'paper':>7s}")
    for layout in (Layout.AOS, Layout.SOA):
        for parallelization in ("OpenMP", "DPC++", "DPC++ NUMA"):
            case = BenchmarkCase("precalculated", layout, Precision.SINGLE,
                                 parallelization)
            result = model_push_nsps(case, n=2_000_000)
            paper = PAPER_TABLE2[(layout.value, parallelization)][
                ("precalculated", "float")]
            name = f"{layout.value}/{parallelization} on 2x Xeon 8260L"
            print(f"{name:32s} {result.nsps:7.2f} {paper:7.2f}")
        for device in ("p630", "iris-xe-max"):
            case = BenchmarkCase("precalculated", layout, Precision.SINGLE,
                                 device)
            result = model_push_nsps(case, n=2_000_000)
            paper = PAPER_TABLE3[layout.value][("precalculated", device)]
            name = f"{layout.value}/DPC++ on {device}"
            print(f"{name:32s} {result.nsps:7.2f} {paper:7.2f}")


def measured_tour() -> None:
    print("\nmeasured numpy-kernel NSPS on this host (100k particles):")
    wave = paper_wave()
    dt = paper_time_step()
    for layout in (Layout.AOS, Layout.SOA):
        for scenario in ("precalculated", "analytical"):
            ensemble = paper_ensemble(100_000, layout, Precision.SINGLE)
            result = measure_real_nsps(ensemble, scenario, wave, dt, steps=3)
            print(f"  {layout.value}/{scenario:13s}: {result.nsps:8.1f} ns "
                  f"per particle-step")


def main() -> None:
    modelled_tour()
    measured_tour()
    print("\n(model times come from the calibrated device simulator; "
          "see DESIGN.md section 5)")


if __name__ == "__main__":
    main()
