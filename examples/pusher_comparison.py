"""Compare the Boris pusher with the Vay and Higuera-Cary schemes.

The paper adopts "the most used and de-facto standard" Boris method and
cites Ripperda et al. (2018) for the comprehensive comparison of
relativistic integrators.  This example reproduces the two classic
discriminating tests from that literature:

1. **E x B drift**: Boris exhibits a spurious velocity ripple when a
   particle should drift uniformly through crossed fields; Vay and
   Higuera-Cary are exact.
2. **Relativistic gyration**: all three preserve |p| under a pure
   magnetic rotation exactly; phase error differs.

Run:  python examples/pusher_comparison.py
"""

import math

import numpy as np

import repro
from repro.constants import (ELECTRON_MASS, ELEMENTARY_CHARGE,
                             SPEED_OF_LIGHT, cyclotron_frequency)
from repro.fields import CrossedField, UniformField


def exb_drift_test() -> None:
    print("E x B drift (E = 0.5 B): velocity ripple around the exact drift")
    field = CrossedField(e=5.0e3, b=1.0e4)
    drift = field.drift_velocity[1]
    u_drift = drift / math.sqrt(1.0 - (drift / SPEED_OF_LIGHT) ** 2)
    p_drift = u_drift * ELECTRON_MASS

    for name in ("boris", "vay", "higuera-cary"):
        ensemble = repro.ParticleEnsemble.from_arrays(
            [[0.0, 0.0, 0.0]], [[0.0, p_drift, 0.0]])
        pusher = repro.get_pusher(name)
        ripple = 0.0
        dt = 1.0e-13
        for _ in range(500):
            fields = field.evaluate(ensemble.component("x"),
                                    ensemble.component("y"),
                                    ensemble.component("z"), 0.0)
            pusher.push(ensemble, fields, dt)
            vy = ensemble.velocities()[0, 1]
            ripple = max(ripple, abs(vy - drift) / abs(drift))
        print(f"  {name:13s} max relative ripple: {ripple:.2e}")


def gyration_test() -> None:
    print("\nrelativistic gyration (u = 2): |p| drift and phase error "
          "after 10 periods")
    b0 = 1.0e4
    u = 2.0
    gamma = math.sqrt(1.0 + u * u)
    p0 = u * ELECTRON_MASS * SPEED_OF_LIGHT
    radius = p0 / (ELEMENTARY_CHARGE * b0 / SPEED_OF_LIGHT)
    omega = cyclotron_frequency(b0, gamma)
    field = UniformField(b=(0.0, 0.0, b0))
    dt = 2.0 * math.pi / omega / 100.0

    for name in ("boris", "vay", "higuera-cary"):
        ensemble = repro.ParticleEnsemble.from_arrays(
            [[0.0, -radius, 0.0]], [[p0, 0.0, 0.0]])
        repro.setup_leapfrog(ensemble, field, dt)
        repro.advance(ensemble, field, dt, steps=1000,
                      pusher=repro.get_pusher(name))
        p = ensemble.momenta()[0]
        norm_drift = abs(np.linalg.norm(p) / p0 - 1.0)
        position_error = np.linalg.norm(
            ensemble.positions()[0] - [0.0, -radius, 0.0]) / radius
        print(f"  {name:13s} | |p| drift: {norm_drift:.2e}   "
              f"position error: {position_error:.2e} gyroradii")


def main() -> None:
    exb_drift_test()
    gyration_test()
    print("\nBoris shows the textbook E x B ripple; Vay and Higuera-Cary "
          "remove it — matching Ripperda et al. (2018).")


if __name__ == "__main__":
    main()
