"""Predict the paper's benchmark on hardware the authors never had.

The device simulator is not hard-wired to Table 1: build descriptors
for your own machines from datasheet numbers and ask what NSPS the
Boris push would achieve — including the roofline explanation of *why*.

Run:  python examples/model_your_machine.py
"""

from repro.bench import format_table
from repro.bench.calibration import cost_model_for, xeon_8260l_node
from repro.fields import MDipoleWave
from repro.fp import Precision
from repro.oneapi import (Queue, RuntimeConfig, UsmMemoryManager,
                          analyze_kernel, make_cpu_descriptor,
                          make_gpu_descriptor)
from repro.oneapi.costmodel import CostModel
from repro.oneapi.runtime import build_virtual_push_spec
from repro.particles import Layout

N = 4_000_000

MACHINES = [
    # The paper's node, rebuilt from public datasheet numbers.
    make_cpu_descriptor("2x Xeon 8260L (datasheet)", cores_per_socket=24,
                        sockets=2, clock_ghz=2.4, memory_channels=6,
                        channel_gbps=23.5),
    # A single-socket desktop.
    make_cpu_descriptor("8-core desktop", cores_per_socket=8, sockets=1,
                        clock_ghz=3.6, memory_channels=2,
                        channel_gbps=25.6, l3_mb_per_socket=16.0),
    # A big dual-socket DDR5 server.
    make_cpu_descriptor("2x 48-core DDR5 server", cores_per_socket=48,
                        sockets=2, clock_ghz=2.7, memory_channels=8,
                        channel_gbps=38.4, flops_per_cycle_sp=64.0),
    # A discrete gaming-class GPU.
    make_gpu_descriptor("discrete GPU (512 EU)", execution_units=512,
                        clock_ghz=2.1, memory_gbps=450.0, l3_mb=16.0,
                        discrete=True),
]


def predicted_nsps(device, scenario):
    queue = Queue(device, RuntimeConfig(runtime="dpcpp",
                                        cpu_places="numa_domains"),
                  CostModel(device))
    field_flops = (MDipoleWave.flops_per_evaluation
                   if scenario == "analytical" else 0.0)
    spec = build_virtual_push_spec(N, Layout.SOA, Precision.SINGLE,
                                   scenario, queue.memory,
                                   field_flops=field_flops)
    records = [queue.parallel_for(N, spec, precision=Precision.SINGLE)
               for _ in range(4)]
    return sum(r.nsps() for r in records[2:]) / 2.0


def main() -> None:
    rows = []
    spec = build_virtual_push_spec(
        N, Layout.SOA, Precision.SINGLE, "precalculated",
        UsmMemoryManager())
    for device in MACHINES:
        point = analyze_kernel(spec, device, Precision.SINGLE)
        rows.append([
            device.name,
            f"{device.peak_flops(Precision.SINGLE) / 1e12:.1f} TF",
            f"{device.total_bandwidth / 1e9:.0f} GB/s",
            f"{predicted_nsps(device, 'precalculated'):.2f}",
            f"{predicted_nsps(device, 'analytical'):.2f}",
            "memory" if point.memory_bound else "compute",
        ])
    print(format_table(
        ["machine", "peak SP", "bandwidth", "precalc NSPS",
         "analytical NSPS", "bound"],
        rows, "Predicted Boris-push NSPS (DPC++ NUMA, SoA, float)"))

    reference = cost_model_for(xeon_8260l_node())
    print(f"\n(reference: the calibrated paper node predicts "
          f"{predicted_nsps(reference.device, 'precalculated'):.2f} NSPS "
          f"precalculated — the paper measured 0.58)")


if __name__ == "__main__":
    main()
