"""Particle escape from the m-dipole focal region (the paper's physics).

The benchmark exists for a physical question: how fast do seed
electrons escape the focus of a standing m-dipole wave while its power
is still below the vacuum-breakdown threshold?  The paper picks
P = 0.1 PW — inside the 4 GW - 1 PW window where fields are already
relativistic but radiative trapping is absent, so escape is fastest.

This example uses :mod:`repro.analysis.escape` to run the paper's
ensemble at 0.1 PW, print the remaining-fraction curve and the fitted
escape rate, then sweeps the power to show the window — including the
onset of radiative trapping at 10 PW when the radiation-reaction
pusher is enabled.

Run:  python examples/dipole_escape_study.py
"""

from repro.analysis import escape_rate_sweep, run_escape_study
from repro.core import RadiationReactionPusher


def paper_power_study() -> None:
    print("escape from the focal region (r < lambda), P = 0.1 PW:")
    curve = run_escape_study(1.0e21, n_particles=20_000, cycles=6,
                             samples_per_cycle=1, steps_per_cycle=200,
                             seed=7)
    print(f"{'t / T':>8s}  {'remaining':>10s}")
    for t, fraction in zip(curve.times, curve.fractions):
        bar = "#" * int(round(40 * fraction))
        print(f"{t:8.1f}  {fraction:10.3f}  {bar}")
    rate = curve.escape_rate()
    print(f"\nescape rate: {rate:.2f} per optical cycle "
          f"(1/e residence time {curve.residence_time():.2f} cycles)")
    print(f"max gamma reached: {curve.max_gamma:.0f} "
          f"(relativistic, as expected at 0.1 PW)")


def power_window_study() -> None:
    print("\nescape rate across the power window "
          "(paper: fastest between ~4 GW and ~1 PW):")
    powers = (1.0e13, 1.0e16, 1.0e19, 1.0e21, 1.0e23)
    curves = escape_rate_sweep(powers, n_particles=2_000, cycles=4,
                               samples_per_cycle=4, steps_per_cycle=240,
                               seed=8)
    print(f"{'power':>12s}  {'rate [1/T]':>10s}  {'max gamma':>10s}")
    for power, curve in curves.items():
        label = f"{power / 1e7 / 1e9:.0e} GW"
        print(f"{label:>12s}  {curve.escape_rate():10.2f}  "
              f"{curve.max_gamma:10.1f}")


def trapping_study() -> None:
    print("\nradiative trapping at 10 PW (paper ref. [25]):")
    plain = run_escape_study(1.0e23, n_particles=2_000, cycles=3,
                             samples_per_cycle=2, steps_per_cycle=300,
                             seed=9)
    radiating = run_escape_study(1.0e23, n_particles=2_000, cycles=3,
                                 samples_per_cycle=2, steps_per_cycle=300,
                                 seed=9, pusher=RadiationReactionPusher())
    print(f"  without radiation reaction: "
          f"{plain.fractions[-1]:.3f} remaining after 3 cycles")
    print(f"  with Landau-Lifshitz friction: "
          f"{radiating.fractions[-1]:.3f} remaining — trapped")


def main() -> None:
    paper_power_study()
    power_window_study()
    trapping_study()


if __name__ == "__main__":
    main()
