"""Full PIC loop validation: cold Langmuir oscillation.

Exercises every stage the paper's Section 2 describes — FDTD Maxwell
solve, CIC interpolation, Boris push, charge-conserving Esirkepov
deposition — on the textbook problem with a known answer: a cold,
uniform electron plasma given a small sinusoidal velocity perturbation
oscillates at the plasma frequency ``omega_p = sqrt(4 pi n e^2 / m)``.

Run:  python examples/pic_plasma_oscillation.py
"""

import math

import numpy as np

import repro
from repro.constants import ELECTRON_MASS, SPEED_OF_LIGHT
from repro.fields.grid import YeeGrid
from repro.pic import EnergyHistory, PicSimulation, plasma_frequency


def build_lattice(dims, spacing, per_axis: int = 2) -> np.ndarray:
    """Quiet-start particle positions: a regular sub-cell lattice."""
    counts = [d * per_axis for d in dims]
    axes = [(np.arange(c) + 0.5) * (d * s / c)
            for c, d, s in zip(counts, dims, spacing)]
    gx, gy, gz = np.meshgrid(*axes, indexing="ij")
    return np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)


def main() -> None:
    density = 1.0e18                      # electrons / cm^3
    omega_p = plasma_frequency(density, ELECTRON_MASS,
                               repro.ELEMENTARY_CHARGE)
    print(f"target plasma frequency: {omega_p:.3e} 1/s")

    dx = 2.0e-5
    dims = (16, 4, 4)
    grid = YeeGrid((0.0, 0.0, 0.0), (dx, dx, dx), dims)
    box_length = dx * dims[0]

    positions = build_lattice(dims, grid.spacing)
    n = positions.shape[0]
    weight = density * grid.cell_volume * grid.num_cells / n

    # Small standing velocity perturbation along x.
    v0 = 1.0e-3 * SPEED_OF_LIGHT
    momenta = np.zeros((n, 3))
    momenta[:, 0] = ELECTRON_MASS * v0 * np.sin(
        2.0 * math.pi * positions[:, 0] / box_length)
    electrons = repro.ParticleEnsemble.from_arrays(
        positions, momenta, weights=np.full(n, weight))

    dt = 0.35 * dx / (SPEED_OF_LIGHT * math.sqrt(3.0))
    simulation = PicSimulation(grid, electrons, dt)
    history = EnergyHistory()
    steps = int(4.0 * 2.0 * math.pi / omega_p / dt)
    print(f"running {steps} steps ({n} particles, "
          f"{grid.num_cells} cells, omega_p dt = {omega_p * dt:.4f})")
    simulation.run(steps, energy_history=history)

    # Field energy oscillates at 2 omega_p.
    measured = history.dominant_frequency() / 2.0
    error = abs(measured / omega_p - 1.0)
    print(f"measured omega_p: {measured:.3e} 1/s "
          f"(error {100 * error:.2f}%)")
    print(f"total-energy drift over 4 periods: "
          f"{100 * history.relative_drift():.2f}%")


if __name__ == "__main__":
    main()
