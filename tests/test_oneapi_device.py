"""Tests for simulated device descriptors."""

import pytest

from repro.errors import ConfigurationError
from repro.fp import Precision
from repro.oneapi import DeviceDescriptor, DeviceType


def make_device(**overrides):
    """A small, valid 2-domain CPU descriptor for tests."""
    params = dict(
        name="test-cpu", device_type=DeviceType.CPU,
        compute_units=8, threads_per_unit=2, numa_domains=2,
        clock_hz=2.0e9, flops_per_cycle_sp=16.0, dp_throughput_ratio=0.5,
        vector_efficiency=0.5, domain_bandwidth=50.0e9,
        interconnect_bandwidth=30.0e9, unit_bandwidth=10.0e9,
        smt_bandwidth_boost=1.2, cache_per_domain=10.0e6,
    )
    params.update(overrides)
    return DeviceDescriptor(**params)


class TestValidation:
    def test_valid_device_constructs(self):
        assert make_device().units_per_domain == 4

    def test_units_must_divide_domains(self):
        with pytest.raises(ConfigurationError):
            make_device(compute_units=7)

    def test_rejects_zero_units(self):
        with pytest.raises(ConfigurationError):
            make_device(compute_units=0, numa_domains=1)

    def test_rejects_bad_vector_efficiency(self):
        with pytest.raises(ConfigurationError):
            make_device(vector_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            make_device(vector_efficiency=1.5)

    def test_rejects_bad_dp_ratio(self):
        with pytest.raises(ConfigurationError):
            make_device(dp_throughput_ratio=2.0)

    def test_rejects_nonpositive_clock(self):
        with pytest.raises(ConfigurationError):
            make_device(clock_hz=0.0)


class TestDerivedQuantities:
    def test_max_threads(self):
        assert make_device().max_threads == 16

    def test_total_bandwidth(self):
        assert make_device().total_bandwidth == pytest.approx(100.0e9)

    def test_peak_flops_sp(self):
        device = make_device()
        assert device.peak_flops(Precision.SINGLE) == pytest.approx(
            8 * 2.0e9 * 16.0)

    def test_peak_flops_dp_is_half(self):
        device = make_device()
        assert device.peak_flops(Precision.DOUBLE) == pytest.approx(
            device.peak_flops(Precision.SINGLE) / 2.0)

    def test_achievable_flops_scales_with_units(self):
        device = make_device()
        one = device.achievable_flops(Precision.SINGLE, 1)
        four = device.achievable_flops(Precision.SINGLE, 4)
        assert four == pytest.approx(4.0 * one)
        assert one == pytest.approx(2.0e9 * 16.0 * 0.5)

    def test_achievable_flops_validates_units(self):
        device = make_device()
        with pytest.raises(ConfigurationError):
            device.achievable_flops(Precision.SINGLE, 0)
        with pytest.raises(ConfigurationError):
            device.achievable_flops(Precision.SINGLE, 9)


class TestDomainMapping:
    def test_domain_major_unit_numbering(self):
        device = make_device()
        assert device.domain_of_unit(0) == 0
        assert device.domain_of_unit(3) == 0
        assert device.domain_of_unit(4) == 1
        assert device.domain_of_unit(7) == 1

    def test_out_of_range_unit(self):
        with pytest.raises(ConfigurationError):
            make_device().domain_of_unit(8)

    def test_single_domain_gpu(self):
        gpu = make_device(device_type=DeviceType.GPU, numa_domains=1,
                          compute_units=24, threads_per_unit=7)
        assert gpu.units_per_domain == 24
        assert gpu.domain_of_unit(23) == 0
