"""Tests for spec builders and the PushEngine physics/timing bridge."""

import numpy as np
import pytest

from repro.core import advance
from repro.errors import ConfigurationError
from repro.fields import MDipoleWave
from repro.fp import Precision
from repro.oneapi import (Queue, RuntimeConfig, UsmMemoryManager,
                          build_push_spec, build_virtual_push_spec,
                          PushEngine, PUSH_FLOPS)
from repro.oneapi.kernelspec import StreamKind
from repro.particles import Layout
from repro.particles.initializers import paper_benchmark_ensemble
from tests.test_oneapi_device import make_device


class TestVirtualSpecs:
    def test_aos_single_stream(self):
        manager = UsmMemoryManager()
        spec = build_virtual_push_spec(1000, Layout.AOS, Precision.SINGLE,
                                       "analytical", manager,
                                       field_flops=100)
        assert len(spec.streams) == 1
        stream = spec.streams[0]
        assert stream.span_bytes_per_item == 36
        assert stream.bytes_per_item == 34
        assert not stream.contiguous
        assert spec.flops_per_item == PUSH_FLOPS + 100

    def test_soa_stream_set(self):
        manager = UsmMemoryManager()
        spec = build_virtual_push_spec(1000, Layout.SOA, Precision.DOUBLE,
                                       "analytical", manager)
        names = [s.name for s in spec.streams]
        assert "soa-x" in names and "soa-gamma" in names \
            and "soa-type" in names
        assert len(spec.streams) == 8
        assert all(s.contiguous for s in spec.streams)

    def test_precalculated_adds_field_streams(self):
        manager = UsmMemoryManager()
        analytical = build_virtual_push_spec(
            1000, Layout.SOA, Precision.SINGLE, "analytical", manager)
        precalc = build_virtual_push_spec(
            1000, Layout.SOA, Precision.SINGLE, "precalculated", manager)
        field_streams = [s for s in precalc.streams
                         if s.name.startswith("fields")]
        assert len(field_streams) == 6
        assert all(s.kind is StreamKind.READ for s in field_streams)
        assert precalc.flops_per_item < analytical.flops_per_item \
            or precalc.flops_per_item == PUSH_FLOPS

    def test_aos_field_stream_interleaved(self):
        manager = UsmMemoryManager()
        spec = build_virtual_push_spec(
            1000, Layout.AOS, Precision.SINGLE, "precalculated", manager)
        fields = [s for s in spec.streams if s.name == "fields-aos"]
        assert len(fields) == 1
        assert fields[0].bytes_per_item == 24
        assert not fields[0].contiguous

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            build_virtual_push_spec(10, Layout.SOA, Precision.SINGLE,
                                    "cached", UsmMemoryManager())

    def test_spec_name_identifies_configuration(self):
        manager = UsmMemoryManager()
        spec = build_virtual_push_spec(10, Layout.AOS, Precision.DOUBLE,
                                       "analytical", manager)
        assert spec.name == "boris-analytical-AoS-double"


class TestBoundSpecs:
    def test_streams_reference_live_allocations(self, layout):
        ensemble = paper_benchmark_ensemble(100, layout=layout)
        manager = UsmMemoryManager()
        spec = build_push_spec(ensemble, "analytical", manager,
                               field_flops=50)
        for stream in spec.streams:
            assert stream.allocation is not None
            assert stream.allocation.nbytes > 0

    def test_precalculated_requires_array(self):
        ensemble = paper_benchmark_ensemble(10)
        with pytest.raises(ConfigurationError):
            build_push_spec(ensemble, "precalculated", UsmMemoryManager())

    def test_precalc_layout_mismatch_rejected(self):
        from repro.fields import PrecalculatedField
        ensemble = paper_benchmark_ensemble(10, layout=Layout.SOA)
        wrong = PrecalculatedField(10, ensemble.precision, Layout.AOS)
        with pytest.raises(ConfigurationError):
            build_push_spec(ensemble, "precalculated", UsmMemoryManager(),
                            precalc=wrong)


class TestPushEngine:
    def _queue(self):
        return Queue(make_device(), RuntimeConfig())

    @pytest.mark.parametrize("scenario", ["precalculated", "analytical"])
    def test_physics_matches_plain_advance(self, scenario):
        wave = MDipoleWave()
        period_fraction = 2.0 * np.pi / wave.omega / 100.0
        runner_ensemble = paper_benchmark_ensemble(64, seed=5)
        reference = runner_ensemble.copy()

        runner = PushEngine(self._queue(), runner_ensemble, scenario,
                            wave, period_fraction)
        runner.run(5)
        advance(reference, wave, period_fraction, 5)

        np.testing.assert_allclose(runner_ensemble.positions(),
                                   reference.positions(), rtol=1e-12)

    def test_records_one_launch_per_step(self):
        wave = MDipoleWave()
        ensemble = paper_benchmark_ensemble(32)
        runner = PushEngine(self._queue(), ensemble, "analytical", wave,
                            1e-16)
        records = runner.run(4)
        assert len(records) == 4
        assert records[0].timing.jit_seconds > 0.0
        assert records[1].timing.jit_seconds == 0.0

    def test_time_advances(self):
        wave = MDipoleWave()
        ensemble = paper_benchmark_ensemble(16)
        runner = PushEngine(self._queue(), ensemble, "analytical", wave,
                            2e-16)
        runner.run(3)
        assert runner.time == pytest.approx(6e-16)

    def test_rejects_unknown_scenario(self):
        with pytest.raises(ConfigurationError):
            PushEngine(self._queue(), paper_benchmark_ensemble(8),
                       "magic", MDipoleWave(), 1e-16)
