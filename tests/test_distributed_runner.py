"""End-to-end behaviour of the sharded runner.

The one invariant everything else leans on: the Boris push has no
cross-particle term, so a sharded run gathered back together is
**bit-identical** to a single-device run, for any partition, any
device mix, and any mid-run repartition.  These tests pin that, plus
the scheduling semantics (overlap), the measurement epochs, and the
fault paths (exchange stalls retried in place, device loss recovered
by checkpoint restore + re-sharding).
"""

import tempfile

import numpy as np
import pytest

from repro.bench import paper_time_step, paper_wave
from repro.bench.scenarios import paper_ensemble
from repro.bench.trajectory import (append_snapshot, latest_snapshot,
                                    load_trajectory, trajectory_path)
from repro.distributed import (DeviceGroup, ExchangePolicy, NspsRebalancer,
                               ShardedPushEngine)
from repro.errors import (ConfigurationError, DeviceLostError,
                          ExchangeTimeoutError)
from repro.fp import Precision
from repro.observability import Tracer, tracing
from repro.oneapi.runtime import PushEngine
from repro.particles import Layout
from repro.particles.ensemble import COMPONENTS
from repro.resilience import (Checkpointer, FaultPlan, FaultRule,
                              fault_injection, named_plan)

N = 2_000
STEPS = 4


def _ensemble(n=N):
    return paper_ensemble(n, Layout.SOA, Precision.SINGLE)


def _runner(spec, n=N, **kwargs):
    return ShardedPushEngine(DeviceGroup.from_spec(spec), _ensemble(n),
                             "precalculated", paper_wave(),
                             paper_time_step(), **kwargs)


def _assert_same_state(a, b):
    for name in COMPONENTS:
        assert np.array_equal(a.component(name), b.component(name)), name


# -- the bit-exactness invariant -------------------------------------------

def test_sharded_run_matches_single_device_bits():
    reference = _ensemble()
    queue = DeviceGroup.from_spec("iris-xe-max").members[0].queue
    PushEngine(queue, reference, "precalculated", paper_wave(),
               paper_time_step()).run(STEPS)

    for spec in ("iris-xe-max", "2x iris-xe-max", "cpu, p630, iris-xe-max"):
        runner = _runner(spec)
        runner.run(STEPS)
        _assert_same_state(reference, runner.ensemble)


def test_mid_run_repartition_does_not_perturb_trajectories():
    reference = _runner("cpu, iris-xe-max")
    reference.run(STEPS)

    rebalanced = _runner("cpu, iris-xe-max", strategy=NspsRebalancer(),
                         rebalance_every=1)
    report = rebalanced.run(STEPS)
    assert report.rebalances >= 1  # particles actually migrated
    _assert_same_state(reference.ensemble, rebalanced.ensemble)


def test_more_devices_than_particles():
    runner = _runner("cpu, p630, iris-xe-max", n=2)
    report = runner.run(2)
    assert report.steps == 2
    assert sorted(s.particles for s in report.shards) == [0, 1, 1]
    empty = [s for s in report.shards if s.particles == 0][0]
    assert empty.steps == 0
    assert empty.mean_nsps != empty.mean_nsps  # NaN: nothing measured


# -- accounting and measurement epochs -------------------------------------

def test_nsps_requires_completed_steps():
    runner = _runner("2x p630")
    with pytest.raises(ConfigurationError):
        runner.nsps()
    runner.run(2)
    assert runner.nsps() > 0.0


def test_reset_measurement_excludes_jit_warmup():
    warm = _runner("2x iris-xe-max", n=50_000)
    warm.run(2)
    warm.reset_measurement()
    steady = warm.run(2 + STEPS).nsps

    cold = _runner("2x iris-xe-max", n=50_000).run(STEPS).nsps
    # The cold run pays the one-off JIT charge inside the measurement.
    assert steady < cold


def test_overlap_beats_bulk_synchronous():
    overlapped = _runner("2x iris-xe-max", n=50_000, overlap=True)
    synchronous = _runner("2x iris-xe-max", n=50_000, overlap=False)
    assert overlapped.run(STEPS).simulated_seconds < \
        synchronous.run(STEPS).simulated_seconds


def test_exchange_is_priced_and_traced():
    tracer = Tracer()
    with tracing(tracer):
        report = _runner("2x p630").run(2)
    assert report.exchange.transfers == 4  # 2 shards x 2 steps
    assert report.exchange.total_bytes > 0
    assert report.exchange.total_seconds > 0.0
    assert set(report.exchange.per_member_bytes) == \
        {"Intel P630 #0", "Intel P630 #1"}
    names = [i.name for i in tracer.instants]
    assert any(n.startswith("exchange:") for n in names)


# -- fault paths ------------------------------------------------------------

def test_exchange_stalls_are_retried_in_place():
    # Stall the first attempts, succeed within the retry budget: the
    # run completes, the stall windows land in the accounting.
    plan = FaultPlan(name="stalls", rules=(
        FaultRule("exchange-stall", probability=1.0, max_injections=2),))
    with fault_injection(plan, seed=0):
        report = _runner("2x p630").run(2)
    assert report.steps == 2
    assert report.exchange.stalls == 2
    assert report.exchange.stalled_seconds == pytest.approx(2 * 5.0e-4)


def test_exchange_stall_exhausts_retry_budget():
    plan = FaultPlan(name="always-stalls", rules=(
        FaultRule("exchange-stall", probability=1.0),))
    with fault_injection(plan, seed=0):
        with pytest.raises(ExchangeTimeoutError):
            _runner("2x p630",
                    policy=ExchangePolicy(max_attempts=2)).run(1)


def test_named_exchange_plan_completes():
    with fault_injection(named_plan("exchange"), seed=1):
        report = _runner("2x p630").run(STEPS)
    assert report.steps == STEPS


def test_device_loss_without_checkpointer_is_fatal():
    with fault_injection(named_plan("device-loss"), seed=3):
        with pytest.raises(DeviceLostError):
            _runner("cpu, iris-xe-max").run(STEPS * 3)


def test_device_loss_redistributes_and_matches_fault_free_bits():
    steps = 10
    reference = _runner("cpu, iris-xe-max")
    reference.run(steps)

    tracer = Tracer()
    with tempfile.TemporaryDirectory() as scratch:
        faulty = _runner("cpu, iris-xe-max",
                         checkpointer=Checkpointer(scratch, every=4))
        with tracing(tracer):
            with fault_injection(named_plan("device-loss"), seed=3):
                report = faulty.run(steps)
    assert report.steps == steps
    assert report.redistributions == 1
    assert report.n_devices == 1  # one survivor finished the run
    assert any(i.name == "recovery:redistribute" for i in tracer.instants)
    _assert_same_state(reference.ensemble, faulty.ensemble)


# -- the committed performance trajectory ----------------------------------

def test_trajectory_round_trip(tmp_path):
    cells = [{"config": "sharded/even", "nsps": 1.25}]
    path = append_snapshot("smoke", cells, 1000, directory=tmp_path,
                           sha="abc123")
    assert path == trajectory_path("smoke", tmp_path)
    append_snapshot("smoke", [{"config": "x", "nsps": 1.5}], 1000,
                    directory=tmp_path, sha="def456")
    document = load_trajectory("smoke", tmp_path)
    assert [s["git_sha"] for s in document["snapshots"]] == \
        ["abc123", "def456"]
    latest = latest_snapshot("smoke", tmp_path)
    assert latest["cells"][0]["nsps"] == 1.5
    assert latest["n_particles"] == 1000


def test_trajectory_validation(tmp_path):
    assert latest_snapshot("absent", tmp_path) is None
    with pytest.raises(ConfigurationError):
        append_snapshot("smoke", [], 10, directory=tmp_path)
    with pytest.raises(ConfigurationError):
        append_snapshot("smoke", [{"config": "no-nsps"}], 10,
                        directory=tmp_path)
    with pytest.raises(ConfigurationError):
        trajectory_path("../escape")
    other = trajectory_path("other", tmp_path)
    other.parent.mkdir(parents=True, exist_ok=True)
    other.write_text('{"scenario": "mismatched", "snapshots": []}')
    with pytest.raises(ConfigurationError):
        load_trajectory("other", tmp_path)


# -- CLI ---------------------------------------------------------------------

def test_cli_devices_and_shard(capsys, tmp_path):
    from repro.cli import main

    assert main(["devices"]) == 0
    out = capsys.readouterr().out
    assert "peak DP" in out and "host link" in out

    assert main(["shard", "--group", "2x p630", "--steps", "2",
                 "--shard-particles", "2000", "--record",
                 "--record-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "group NSPS" in out
    # shard --record emits the regression farm's schema v1
    from repro.regress import load_baseline
    recorded = load_baseline("shard", tmp_path).latest
    cell = recorded.cells[0]
    assert cell.keys["device"] == "2x p630"
    assert cell.keys["backend"] == "oneapi"
    assert cell.metrics["n_devices"] == 2
