"""Tests for the fault-injection and resilience layer.

The contracts under test, in the order the layer builds them up:

* determinism — same (plan, seed, workload) injects byte-identical
  fault sequences, tracer or not;
* injection sites — every fault kind actually strikes where the
  taxonomy says it does, and never after the kernel body ran;
* recovery accounting — retries, watchdog kills and backoff land on
  the *simulated* timeline and in the surviving record's timing;
* checkpoint/restore — step-granular push and whole-PIC round trips
  are bit-exact;
* device fallback — losing a device mid-run recovers to physics
  identical to an uninterrupted run (the acceptance criterion);
* the chaos self-check (marked ``slow``) — no fault plan can make an
  undocumented exception escape or the physics go non-finite.
"""

import numpy as np
import pytest

from repro.errors import (AllocationFailedError, ConfigurationError,
                          DeviceLostError, KernelError, LaunchTimeoutError,
                          MemoryModelError)
from repro.fields.dipole import MDipoleWave
from repro.fp import Precision
from repro.particles.ensemble import COMPONENTS, Layout, make_ensemble
from repro.resilience import (Checkpointer, FaultInjector, FaultPlan,
                              FaultRule, ResilientPushEngine, RetryPolicy,
                              Watchdog, active_fault_injector,
                              chaos_self_check, fault_injection,
                              launch_with_retry, named_plan,
                              PLAN_NAMES)


def cpu_queue(n=2048, scenario="precalculated"):
    from repro.bench.calibration import cost_model_for, device_by_name
    from repro.oneapi.queue import Queue, RuntimeConfig
    from repro.oneapi.runtime import build_virtual_push_spec
    device = device_by_name("cpu")
    queue = Queue(device, RuntimeConfig(runtime="dpcpp"),
                  cost_model_for(device))
    spec = build_virtual_push_spec(n, Layout.SOA, Precision.SINGLE,
                                   scenario, queue.memory)
    return queue, spec, n


def seeded_ensemble(n=128, seed=5):
    ensemble = make_ensemble(n, Layout.SOA, Precision.DOUBLE)
    rng = np.random.default_rng(seed)
    for name in ("x", "y", "z"):
        ensemble.component(name)[:] = rng.random(n) * 1.0e-6
    for name in ("px", "py", "pz"):
        ensemble.component(name)[:] = rng.standard_normal(n) * 1.0e-22
    return ensemble


class TestPlanValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule("meteor-strike")

    def test_probability_range_enforced(self):
        with pytest.raises(ConfigurationError):
            FaultRule("launch-failure", probability=1.5)

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(name="dup", rules=(
                FaultRule("jit-failure"), FaultRule("jit-failure")))

    def test_named_plans_all_build(self):
        for name in PLAN_NAMES:
            assert named_plan(name).name == name
        with pytest.raises(ConfigurationError):
            named_plan("no-such-plan")

    def test_hook_off_by_default_and_restored(self):
        assert active_fault_injector() is None
        with fault_injection(named_plan("none"), seed=0) as injector:
            assert active_fault_injector() is injector
        assert active_fault_injector() is None


class TestDeterminism:
    def _inject_sequence(self, seed, opportunities=200):
        injector = FaultInjector(named_plan("default"), seed=seed)
        queue, spec, _ = cpu_queue()
        for _ in range(opportunities):
            try:
                injector.on_launch("cpu-sim", spec)
            except (KernelError, LaunchTimeoutError):
                pass
            try:
                injector.on_jit(spec.name)
            except KernelError:
                pass
        return [(f.kind, f.op_index) for f in injector.injected]

    def test_same_seed_same_faults(self):
        assert self._inject_sequence(7) == self._inject_sequence(7)

    def test_different_seed_different_faults(self):
        assert self._inject_sequence(7) != self._inject_sequence(8)

    def test_tracer_presence_does_not_change_decisions(self):
        from repro.observability import Tracer, tracing
        untraced = self._inject_sequence(3)
        with tracing(Tracer()):
            traced = self._inject_sequence(3)
        assert traced == untraced

    def test_kind_streams_are_independent(self):
        # Disabling one kind must not shift another kind's decisions.
        full = named_plan("default")
        only_jit = FaultPlan(name="jit-only", rules=(
            full.rule_for("jit-failure"),))

        def jit_ops(plan):
            injector = FaultInjector(plan, seed=9)
            fired = []
            for _ in range(100):
                try:
                    injector.on_jit("k")
                except KernelError:
                    fired.append(injector.opportunities("jit-failure") - 1)
            return fired

        assert jit_ops(full) == jit_ops(only_jit)


class TestInjectionSites:
    def test_launch_failure_raises_before_kernel_runs(self):
        queue, spec, n = cpu_queue()
        ran = []
        plan = FaultPlan(name="f", rules=(
            FaultRule("launch-failure", at_ops=(0,)),))
        with fault_injection(plan, seed=0):
            with pytest.raises(KernelError):
                queue.parallel_for(n, spec, kernel=lambda: ran.append(1))
        assert not ran
        assert not queue.records

    def test_jit_failure_keeps_cache_cold(self):
        queue, spec, n = cpu_queue()
        plan = FaultPlan(name="f", rules=(
            FaultRule("jit-failure", at_ops=(0,)),))
        with fault_injection(plan, seed=0):
            with pytest.raises(KernelError):
                queue.parallel_for(n, spec)
            record = queue.parallel_for(n, spec)
        # the retry still pays the JIT cost: the failed compile never
        # populated the cache
        assert record.timing.jit_seconds > 0.0

    def test_slowdown_scales_total_time(self):
        clean_queue, clean_spec, n = cpu_queue()
        clean = [clean_queue.parallel_for(n, clean_spec) for _ in range(2)]
        queue, spec, n = cpu_queue()
        plan = FaultPlan(name="s", rules=(
            FaultRule("launch-slowdown", at_ops=(1,), slowdown=3.0),))
        with fault_injection(plan, seed=0):
            records = [queue.parallel_for(n, spec) for _ in range(2)]
        assert records[0].timing.total_seconds == pytest.approx(
            clean[0].timing.total_seconds)
        assert records[1].timing.total_seconds == pytest.approx(
            3.0 * clean[1].timing.total_seconds)
        assert records[1].timing.slowdown_seconds == pytest.approx(
            2.0 * clean[1].timing.total_seconds)

    def test_alloc_failure_strikes_new_allocations_only(self):
        from repro.oneapi.memory import UsmMemoryManager
        plan = FaultPlan(name="a", rules=(
            FaultRule("alloc-failure", at_ops=(0,)),))
        memory = UsmMemoryManager()
        array = np.zeros(64)
        with fault_injection(plan, seed=0):
            with pytest.raises(AllocationFailedError):
                memory.register(array)
            allocation = memory.register(array)    # retry succeeds
            assert memory.register(array) is allocation  # idempotent path

    def test_alloc_failure_during_spec_build_is_retried(self):
        # Spec construction allocates before any launch exists, so the
        # harness wraps it in allocate_with_retry (backoff:alloc on the
        # timeline) rather than run_with_retry.
        from repro.bench.calibration import cost_model_for, device_by_name
        from repro.oneapi.queue import Queue, RuntimeConfig
        from repro.oneapi.runtime import build_virtual_push_spec
        from repro.resilience import allocate_with_retry
        device = device_by_name("cpu")
        queue = Queue(device, RuntimeConfig(runtime="dpcpp"),
                      cost_model_for(device))
        plan = FaultPlan(name="a", rules=(
            FaultRule("alloc-failure", at_ops=(0, 1)),))
        with fault_injection(plan, seed=0):
            spec = allocate_with_retry(
                lambda: build_virtual_push_spec(
                    512, Layout.SOA, Precision.SINGLE, "precalculated",
                    queue.memory), queue)
        assert spec is not None
        backoffs = [e for e in queue.timeline.events
                    if e.name == "backoff:alloc"]
        assert len(backoffs) == 2

    def test_harness_survives_spec_build_alloc_failure(self):
        from repro.bench.harness import model_push_nsps
        from repro.bench.scenarios import BenchmarkCase
        case = BenchmarkCase("precalculated", Layout.SOA, Precision.SINGLE,
                             "DPC++ NUMA")
        plan = FaultPlan(name="a", rules=(
            FaultRule("alloc-failure", at_ops=(0,)),))
        with fault_injection(plan, seed=0):
            result = model_push_nsps(case, n=4096, steps=3)
        assert result.nsps > 0.0

    def test_poisoned_read_detected_and_scrubbed(self):
        queue, spec, n = cpu_queue()
        plan = FaultPlan(name="p", rules=(
            FaultRule("poisoned-read", at_ops=(0,)),))
        with fault_injection(plan, seed=0):
            with pytest.raises(MemoryModelError):
                queue.parallel_for(n, spec)
            record = launch_with_retry(queue, n, spec,
                                       policy=RetryPolicy())
        assert record is not None
        assert not any(s.allocation.poisoned for s in spec.streams
                       if s.allocation is not None)

    def test_genuine_memory_error_not_swallowed(self):
        # run_with_retry only scrubs *poisoned* allocations; a
        # MemoryModelError with nothing to scrub must propagate.
        from repro.resilience.recovery import run_with_retry
        queue, spec, _ = cpu_queue()

        def broken():
            raise MemoryModelError("real bug")

        with fault_injection(named_plan("none"), seed=0):
            with pytest.raises(MemoryModelError):
                run_with_retry(broken, queue, spec)

    def test_device_loss_is_sticky(self):
        plan = FaultPlan(name="d", rules=(
            FaultRule("device-loss", at_ops=(0,), max_injections=1),))
        injector = FaultInjector(plan, seed=0)
        with pytest.raises(DeviceLostError):
            injector.on_device_step("gpu-sim")
        # every later touch of the dead device fails, without a new
        # injection being counted
        with pytest.raises(DeviceLostError):
            injector.on_device_step("gpu-sim")
        assert len(injector.injected) == 1

    def test_scheduler_imbalance_halves_threads(self):
        from repro.oneapi.scheduler import DynamicScheduler, ThreadTopology
        from repro.bench.calibration import device_by_name
        topology = ThreadTopology(device_by_name("cpu"))
        plan = FaultPlan(name="i", rules=(
            FaultRule("scheduler-imbalance", at_ops=(0,)),))
        with fault_injection(plan, seed=0):
            schedule = DynamicScheduler(seed=1).schedule(10_000, topology)
        threads = {c.thread for c in schedule.chunks}
        assert max(threads) < topology.n_threads // 2 + 1

    def test_retry_exhaustion_raises_last_error(self):
        queue, spec, n = cpu_queue()
        plan = FaultPlan(name="f", rules=(FaultRule("launch-failure",
                                                    probability=1.0),))
        policy = RetryPolicy(max_attempts=3)
        with fault_injection(plan, seed=0):
            with pytest.raises(KernelError):
                launch_with_retry(queue, n, spec, policy=policy)
        backoffs = [e for e in queue.timeline.events
                    if e.name.startswith("backoff:")]
        assert len(backoffs) == 2    # attempts - 1

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            Watchdog(timeout_seconds=0.0)


class TestCheckpointer:
    def test_cadence_and_pruning(self, tmp_path):
        checkpointer = Checkpointer(tmp_path, every=2, keep=2)
        ensemble = seeded_ensemble()
        for step in range(1, 9):
            checkpointer.maybe_save_push(step, ensemble, step * 1.0e-12)
        assert checkpointer.steps_on_disk() == [6, 8]
        assert checkpointer.latest_step() == 8

    def test_push_round_trip_is_bit_exact(self, tmp_path):
        checkpointer = Checkpointer(tmp_path, every=1)
        ensemble = seeded_ensemble()
        checkpointer.save_push(3, ensemble, 3.0e-12)
        step, time, restored = checkpointer.load_push()
        assert (step, time) == (3, 3.0e-12)
        for name in COMPONENTS:
            assert np.array_equal(restored.component(name),
                                  ensemble.component(name))

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Checkpointer(tmp_path).load_push()

    def test_invalid_cadence_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Checkpointer(tmp_path, every=0)


class TestPicCheckpoint:
    def _simulation(self):
        from repro.fields import UniformField, YeeGrid
        from repro.particles import ParticleEnsemble
        from repro.pic import PicSimulation, max_stable_dt
        grid = YeeGrid((0.0, 0.0, 0.0), (1.0e-3,) * 3, (8, 4, 4))
        grid.fill_from_source(UniformField(b=(0.0, 0.0, 1.0e4)), 0.0)
        rng = np.random.default_rng(2)
        positions = rng.random((32, 3)) * [8.0e-3, 4.0e-3, 4.0e-3]
        momenta = rng.standard_normal((32, 3)) * 1.0e-23
        ensemble = ParticleEnsemble.from_arrays(positions, momenta)
        dt = max_stable_dt(grid.spacing, 0.9)
        return PicSimulation(grid, ensemble, dt, deposition="direct")

    def test_save_load_round_trip(self, tmp_path):
        simulation = self._simulation()
        simulation.run(3)
        path = tmp_path / "sim.npz"
        simulation.save_checkpoint(path)
        restored = type(simulation).load_checkpoint(path)
        assert restored.step_count == 3
        assert restored.time == simulation.time
        assert restored.deposition == simulation.deposition
        assert restored.solver_kind == simulation.solver_kind
        for name in simulation.grid.fields:
            assert np.array_equal(restored.grid.fields[name],
                                  simulation.grid.fields[name])

    def test_resume_matches_uninterrupted(self, tmp_path):
        reference = self._simulation()
        reference.run(10)
        interrupted = self._simulation()
        interrupted.run(6, checkpointer=Checkpointer(tmp_path, every=3))
        resumed = Checkpointer(tmp_path, every=3).load_simulation()
        assert resumed.step_count == 6
        resumed.run(4)
        assert np.array_equal(resumed.ensembles[0].positions(),
                              reference.ensembles[0].positions())
        for name in reference.grid.fields:
            assert np.array_equal(resumed.grid.fields[name],
                                  reference.grid.fields[name])


class TestDeviceFallback:
    def _run(self, plan_name=None, seed=0, steps=14, checkpointer=None,
             devices=("iris-xe-max", "p630", "cpu")):
        ensemble = seeded_ensemble()
        source = MDipoleWave()
        runner = ResilientPushEngine(ensemble, "analytical", source,
                                     1.0e-12, devices=devices,
                                     checkpointer=checkpointer)
        if plan_name is None:
            records, report = runner.run(steps)
        else:
            with fault_injection(named_plan(plan_name), seed=seed):
                records, report = runner.run(steps)
        return ensemble, records, report

    def test_device_loss_recovers_to_identical_physics(self, tmp_path):
        reference, _, _ = self._run()
        checkpointer = Checkpointer(tmp_path, every=4, keep=2)
        survivor, records, report = self._run("device-loss", seed=1,
                                              checkpointer=checkpointer)
        assert report.completed
        assert report.devices_lost == ("iris-xe-max",)
        assert report.restores == 1
        assert len(records) == report.steps
        for name in COMPONENTS:
            assert np.array_equal(survivor.component(name),
                                  reference.component(name))

    def test_fixed_seed_is_bit_reproducible(self, tmp_path):
        first, _, report_a = self._run("chaos", seed=4,
                                       checkpointer=Checkpointer(
                                           tmp_path / "a", every=4))
        second, _, report_b = self._run("chaos", seed=4,
                                        checkpointer=Checkpointer(
                                            tmp_path / "b", every=4))
        assert report_a.fault_counts == report_b.fault_counts
        assert report_a.devices_lost == report_b.devices_lost
        assert report_a.backoff_seconds == report_b.backoff_seconds
        for name in COMPONENTS:
            assert np.array_equal(first.component(name),
                                  second.component(name))

    def test_chain_exhaustion_raises(self):
        plan = FaultPlan(name="kill-all", rules=(
            FaultRule("device-loss", probability=1.0),))
        ensemble = seeded_ensemble()
        runner = ResilientPushEngine(ensemble, "analytical",
                                     MDipoleWave(), 1.0e-12,
                                     devices=("p630", "cpu"))
        with fault_injection(plan, seed=0):
            with pytest.raises(DeviceLostError, match="exhausted"):
                runner.run(4)

    def test_report_summary_renders(self, tmp_path):
        _, _, report = self._run("device-loss", seed=1,
                                 checkpointer=Checkpointer(tmp_path,
                                                           every=4))
        text = report.summary()
        assert "device-loss" in text
        assert "devices lost" in text


class TestCli:
    def test_faults_command_runs(self, capsys):
        from repro.cli import main
        assert main(["faults", "--plan", "device-loss", "--steps", "12",
                     "--fault-particles", "512"]) == 0
        out = capsys.readouterr().out
        assert "plan=device-loss" in out
        assert "devices lost" in out

    def test_fault_flags_accepted_globally(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["--fault-plan", "transient", "--fault-seed", "9", "devices"])
        assert args.fault_plan == "transient"
        assert args.fault_seed == 9
        args = build_parser().parse_args(
            ["devices", "--fault-plan", "chaos"])
        assert args.fault_plan == "chaos"

    def test_example_smoke(self):
        # the checkpoint_resume example asserts its own bit-exactness
        import runpy
        import pathlib
        example = (pathlib.Path(__file__).resolve().parent.parent
                   / "examples" / "checkpoint_resume.py")
        runpy.run_path(str(example), run_name="__main__")


@pytest.mark.slow
class TestChaosSelfCheck:
    def test_matrix_stays_within_taxonomy(self):
        results = chaos_self_check(seeds=(0, 1, 2), steps=20,
                                   n_particles=128)
        assert len(results) == 3 * len(PLAN_NAMES)
        for (plan, seed), cell in results.items():
            assert cell.outcome in ("completed", "exhausted", "gave-up")
        # the control arm never sees a fault
        assert all(results[("none", seed)].faults == 0
                   for seed in (0, 1, 2))
        # chaos actually injects somewhere in the matrix
        assert any(results[("chaos", seed)].faults > 0
                   for seed in (0, 1, 2))