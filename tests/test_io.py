"""Tests for checkpoint save/load."""

import numpy as np
import pytest

from repro import io
from repro.errors import ConfigurationError
from repro.fields import UniformField, YeeGrid
from repro.fp import Precision
from repro.particles import (Layout, ParticleSpecies, ParticleTypeTable,
                             make_ensemble)
from repro.particles.ensemble import COMPONENTS


class TestEnsembleRoundtrip:
    def test_bitwise_roundtrip(self, tmp_path, small_ensemble):
        path = tmp_path / "state.npz"
        io.save_ensemble(path, small_ensemble)
        loaded = io.load_ensemble(path)
        assert loaded.layout is small_ensemble.layout
        assert loaded.precision is small_ensemble.precision
        for name in COMPONENTS:
            np.testing.assert_array_equal(loaded.component(name),
                                          small_ensemble.component(name))
        np.testing.assert_array_equal(loaded.type_ids,
                                      small_ensemble.type_ids)

    def test_single_precision_preserved(self, tmp_path):
        ensemble = make_ensemble(10, Layout.AOS, Precision.SINGLE)
        path = tmp_path / "single.npz"
        io.save_ensemble(path, ensemble)
        loaded = io.load_ensemble(path)
        assert loaded.precision is Precision.SINGLE
        assert loaded.component("px").dtype == np.float32

    def test_species_table_travels(self, tmp_path):
        table = ParticleTypeTable()
        table.register(ParticleSpecies("muon", 1.88e-25, -4.8e-10))
        ensemble = make_ensemble(4, Layout.SOA, type_table=table)
        path = tmp_path / "muons.npz"
        io.save_ensemble(path, ensemble)
        loaded = io.load_ensemble(path)
        assert loaded.type_table[0].name == "muon"
        assert loaded.type_table[0].mass == pytest.approx(1.88e-25)

    def test_empty_ensemble(self, tmp_path):
        ensemble = make_ensemble(0, Layout.SOA)
        path = tmp_path / "empty.npz"
        io.save_ensemble(path, ensemble)
        assert io.load_ensemble(path).size == 0

    def test_rejects_wrong_kind(self, tmp_path):
        grid = YeeGrid((0, 0, 0), (1, 1, 1), (2, 2, 2))
        path = tmp_path / "grid.npz"
        io.save_grid(path, grid)
        with pytest.raises(ConfigurationError):
            io.load_ensemble(path)


class TestGridRoundtrip:
    def test_fields_and_geometry_roundtrip(self, tmp_path):
        grid = YeeGrid((1.0, 2.0, 3.0), (0.5, 0.5, 0.5), (4, 3, 2))
        grid.fill_from_source(UniformField(e=(1, 2, 3), b=(4, 5, 6)), 0.0)
        grid.currents["jy"][1, 1, 1] = 7.0
        path = tmp_path / "grid.npz"
        io.save_grid(path, grid, time=2.5e-15)
        loaded, time = io.load_grid(path)
        assert time == 2.5e-15
        assert loaded.origin == grid.origin
        assert loaded.dims == grid.dims
        np.testing.assert_array_equal(loaded.component("bz"),
                                      grid.component("bz"))
        assert loaded.currents["jy"][1, 1, 1] == 7.0

    def test_rejects_wrong_kind(self, tmp_path, small_ensemble):
        path = tmp_path / "ens.npz"
        io.save_ensemble(path, small_ensemble)
        with pytest.raises(ConfigurationError):
            io.load_grid(path)


class TestResume:
    def test_resumed_push_matches_uninterrupted(self, tmp_path):
        """A checkpoint/restore mid-run must not perturb the physics."""
        import repro
        wave = repro.MDipoleWave()
        dt = 2.0 * np.pi / wave.omega / 100.0
        a = repro.paper_benchmark_ensemble(100, seed=21)
        repro.setup_leapfrog(a, wave, dt)
        b_path = tmp_path / "mid.npz"

        repro.advance(a, wave, dt, 5)
        io.save_ensemble(b_path, a)
        repro.advance(a, wave, dt, 5, start_time=5 * dt)

        b = io.load_ensemble(b_path)
        repro.advance(b, wave, dt, 5, start_time=5 * dt)
        np.testing.assert_array_equal(a.positions(), b.positions())
        np.testing.assert_array_equal(a.momenta(), b.momenta())
