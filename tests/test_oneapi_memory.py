"""Tests for the USM memory model (pages, first-touch, locality)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryModelError
from repro.oneapi import PAGE_SIZE, UsmAllocation, UsmKind, UsmMemoryManager


class TestAllocation:
    def test_page_count_rounds_up(self):
        assert UsmAllocation(1).n_pages == 1
        assert UsmAllocation(PAGE_SIZE).n_pages == 1
        assert UsmAllocation(PAGE_SIZE + 1).n_pages == 2
        assert UsmAllocation(0).n_pages == 0

    def test_pages_start_untouched(self):
        allocation = UsmAllocation(3 * PAGE_SIZE)
        assert np.all(allocation.page_domains == -1)

    def test_rejects_bad_kind(self):
        with pytest.raises(MemoryModelError):
            UsmAllocation(10, kind="remote")

    def test_rejects_negative_size(self):
        with pytest.raises(MemoryModelError):
            UsmAllocation(-1)

    def test_range_validation(self):
        allocation = UsmAllocation(PAGE_SIZE)
        with pytest.raises(MemoryModelError):
            allocation.touch(0, PAGE_SIZE + 1, 0)
        with pytest.raises(MemoryModelError):
            allocation.locality(-1, 10, 0)


class TestFirstTouch:
    def test_touch_homes_pages(self):
        allocation = UsmAllocation(4 * PAGE_SIZE)
        fresh = allocation.touch(0, 2 * PAGE_SIZE, domain=1)
        assert fresh == 2
        assert list(allocation.page_domains) == [1, 1, -1, -1]

    def test_second_touch_does_not_rehome(self):
        allocation = UsmAllocation(2 * PAGE_SIZE)
        allocation.touch(0, PAGE_SIZE, domain=0)
        fresh = allocation.touch(0, 2 * PAGE_SIZE, domain=1)
        assert fresh == 1
        assert list(allocation.page_domains) == [0, 1]

    def test_partial_page_touch(self):
        allocation = UsmAllocation(2 * PAGE_SIZE)
        fresh = allocation.touch(10, 20, domain=0)
        assert fresh == 1
        assert allocation.page_domains[0] == 0

    def test_empty_range_is_noop(self):
        allocation = UsmAllocation(PAGE_SIZE)
        assert allocation.touch(5, 5, 0) == 0

    def test_reset_pages(self):
        allocation = UsmAllocation(PAGE_SIZE)
        allocation.touch(0, PAGE_SIZE, 0)
        allocation.reset_pages()
        assert np.all(allocation.page_domains == -1)

    def test_home_histogram(self):
        allocation = UsmAllocation(3 * PAGE_SIZE)
        allocation.touch(0, PAGE_SIZE, 0)
        allocation.touch(PAGE_SIZE, 2 * PAGE_SIZE, 1)
        histogram = allocation.home_histogram()
        assert histogram == {-1: 1, 0: 1, 1: 1}


class TestLocality:
    def test_untouched_counts_as_local(self):
        allocation = UsmAllocation(2 * PAGE_SIZE)
        local, remote = allocation.locality(0, 2 * PAGE_SIZE, domain=0)
        assert (local, remote) == (2 * PAGE_SIZE, 0)

    def test_remote_pages_counted(self):
        allocation = UsmAllocation(2 * PAGE_SIZE)
        allocation.touch(0, 2 * PAGE_SIZE, domain=1)
        local, remote = allocation.locality(0, 2 * PAGE_SIZE, domain=0)
        assert (local, remote) == (0, 2 * PAGE_SIZE)

    def test_mixed_homes_split(self):
        allocation = UsmAllocation(2 * PAGE_SIZE)
        allocation.touch(0, PAGE_SIZE, domain=0)
        allocation.touch(PAGE_SIZE, 2 * PAGE_SIZE, domain=1)
        local, remote = allocation.locality(0, 2 * PAGE_SIZE, domain=0)
        assert (local, remote) == (PAGE_SIZE, PAGE_SIZE)

    def test_partial_remote_page(self):
        allocation = UsmAllocation(2 * PAGE_SIZE)
        allocation.touch(0, 2 * PAGE_SIZE, domain=1)
        local, remote = allocation.locality(100, 300, domain=0)
        assert (local, remote) == (0, 200)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=8 * PAGE_SIZE),
           st.integers(min_value=0, max_value=8 * PAGE_SIZE),
           st.integers(min_value=0, max_value=1))
    def test_local_plus_remote_equals_range(self, a, b, domain):
        allocation = UsmAllocation(8 * PAGE_SIZE)
        # Home pages in an alternating pattern.
        for page in range(8):
            allocation.touch(page * PAGE_SIZE, (page + 1) * PAGE_SIZE,
                             page % 2)
        start, end = min(a, b), max(a, b)
        local, remote = allocation.locality(start, end, domain)
        assert local + remote == end - start
        assert local >= 0 and remote >= 0


class TestMemoryManager:
    def test_malloc_shared_registers(self):
        manager = UsmMemoryManager()
        array = manager.malloc_shared(100, np.float64)
        allocation = manager.allocation_of(array)
        assert allocation.nbytes == 800
        assert allocation.kind == UsmKind.SHARED

    def test_register_idempotent(self):
        manager = UsmMemoryManager()
        array = np.zeros(10)
        first = manager.register(array)
        second = manager.register(array)
        assert first is second
        assert len(manager) == 1

    def test_register_resolves_views_to_base(self):
        manager = UsmMemoryManager()
        array = np.zeros(100)
        manager.register(array)
        view = array[10:20]
        assert manager.allocation_of(view).nbytes == 800

    def test_structured_field_view_resolves(self):
        manager = UsmMemoryManager()
        records = np.zeros(10, dtype=[("a", np.float64), ("b", np.int16)])
        allocation = manager.register(records)
        assert manager.allocation_of(records["a"]) is allocation

    def test_unregistered_lookup_raises(self):
        manager = UsmMemoryManager()
        with pytest.raises(MemoryModelError):
            manager.allocation_of(np.zeros(3))

    def test_virtual_allocation(self):
        manager = UsmMemoryManager()
        allocation = manager.virtual(10 * PAGE_SIZE, name="model-only")
        assert allocation.array is None
        assert allocation.n_pages == 10
        assert manager.total_allocated == 10 * PAGE_SIZE

    def test_free(self):
        manager = UsmMemoryManager()
        allocation = manager.virtual(PAGE_SIZE)
        manager.free(allocation)
        assert len(manager) == 0
        with pytest.raises(MemoryModelError):
            manager.free(allocation)

    def test_allocations_iterator(self):
        manager = UsmMemoryManager()
        manager.virtual(PAGE_SIZE)
        manager.malloc_device(4, np.float32)
        assert len(list(manager.allocations())) == 2
