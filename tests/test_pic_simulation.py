"""Integration tests for the full PIC loop."""

import math

import numpy as np
import pytest

from repro.constants import ELECTRON_MASS, SPEED_OF_LIGHT
from repro.errors import SimulationError
from repro.fields import UniformField, YeeGrid
from repro.particles import ParticleEnsemble
from repro.pic import (EnergyHistory, PicSimulation, max_stable_dt,
                       plasma_frequency)
from repro.constants import ELEMENTARY_CHARGE


def small_grid(dims=(8, 4, 4), spacing=2.0e-5):
    return YeeGrid((0.0, 0.0, 0.0),
                   (spacing, spacing, spacing), dims)


def lattice_positions(dims, spacing, per_axis=2):
    counts = [d * per_axis for d in dims]
    axes = [(np.arange(c) + 0.5) * (d * spacing / c)
            for c, d in zip(counts, dims)]
    gx, gy, gz = np.meshgrid(*axes, indexing="ij")
    return np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)


class TestConstruction:
    def test_rejects_unknown_deposition(self):
        grid = small_grid()
        ensemble = ParticleEnsemble.from_arrays([[1e-5] * 3], [[0] * 3])
        with pytest.raises(SimulationError):
            PicSimulation(grid, ensemble, 1e-17, deposition="magic")

    def test_rejects_empty_ensemble_list(self):
        with pytest.raises(SimulationError):
            PicSimulation(small_grid(), [], 1e-17)

    def test_rejects_cfl_violation(self):
        grid = small_grid()
        ensemble = ParticleEnsemble.from_arrays([[1e-5] * 3], [[0] * 3])
        with pytest.raises(SimulationError):
            PicSimulation(grid, ensemble, 1.0)

    def test_single_ensemble_promoted_to_list(self):
        grid = small_grid()
        ensemble = ParticleEnsemble.from_arrays([[1e-5] * 3], [[0] * 3])
        simulation = PicSimulation(grid, ensemble, 1e-17)
        assert len(simulation.ensembles) == 1


class TestExternalFieldMode:
    def test_gyration_in_frozen_grid_field(self):
        # deposition="none": particles feel the grid but do not change it.
        b0 = 1.0e4
        grid = small_grid(dims=(8, 8, 8), spacing=1.0e-3)
        grid.fill_from_source(UniformField(b=(0.0, 0.0, b0)), 0.0)
        u = 0.01
        p0 = u * ELECTRON_MASS * SPEED_OF_LIGHT
        centre = np.array([4.0e-3, 4.0e-3, 4.0e-3])
        radius = p0 / (ELEMENTARY_CHARGE * b0 / SPEED_OF_LIGHT)
        ensemble = ParticleEnsemble.from_arrays(
            [centre + [0.0, -radius, 0.0]], [[p0, 0.0, 0.0]])
        dt = max_stable_dt(grid.spacing, 0.9)
        simulation = PicSimulation(grid, ensemble, dt, deposition="none")
        gamma0 = float(ensemble.component("gamma")[0])
        simulation.run(200)
        # Fields untouched, energy conserved.
        assert np.allclose(grid.component("bz"), b0)
        assert ensemble.component("gamma")[0] == pytest.approx(gamma0,
                                                               rel=1e-12)

    def test_particles_wrapped_into_box(self):
        grid = small_grid(dims=(4, 4, 4), spacing=1.0e-5)
        p = 0.5 * ELECTRON_MASS * SPEED_OF_LIGHT
        ensemble = ParticleEnsemble.from_arrays(
            [[3.9e-5, 2e-5, 2e-5]], [[p, 0.0, 0.0]])
        dt = max_stable_dt(grid.spacing, 0.9)
        simulation = PicSimulation(grid, ensemble, dt, deposition="none")
        simulation.run(20)
        pos = ensemble.positions()[0]
        assert 0.0 <= pos[0] < 4.0e-5


class TestSelfConsistentPlasma:
    def _build(self, deposition="esirkepov"):
        density = 1.0e18
        dims = (16, 4, 4)
        spacing = 2.0e-5
        grid = small_grid(dims, spacing)
        positions = lattice_positions(dims, spacing)
        n = positions.shape[0]
        weight = density * grid.cell_volume * grid.num_cells / n
        box = dims[0] * spacing
        v0 = 1.0e-3 * SPEED_OF_LIGHT
        momenta = np.zeros((n, 3))
        momenta[:, 0] = ELECTRON_MASS * v0 * np.sin(
            2.0 * math.pi * positions[:, 0] / box)
        ensemble = ParticleEnsemble.from_arrays(
            positions, momenta, weights=np.full(n, weight))
        dt = 0.35 * spacing / (SPEED_OF_LIGHT * math.sqrt(3.0))
        omega_p = plasma_frequency(density, ELECTRON_MASS,
                                   ELEMENTARY_CHARGE)
        return PicSimulation(grid, ensemble, dt,
                             deposition=deposition), omega_p

    def test_plasma_oscillation_frequency(self):
        simulation, omega_p = self._build()
        history = EnergyHistory()
        steps = int(3.0 * 2.0 * math.pi / omega_p / simulation.dt)
        simulation.run(steps, energy_history=history)
        measured = history.dominant_frequency() / 2.0
        assert measured == pytest.approx(omega_p, rel=0.02)

    def test_energy_conservation(self):
        simulation, omega_p = self._build()
        history = EnergyHistory()
        steps = int(2.0 * 2.0 * math.pi / omega_p / simulation.dt)
        simulation.run(steps, energy_history=history)
        assert history.relative_drift() < 0.05

    def test_callback_invoked(self):
        simulation, _ = self._build()
        count = []
        simulation.run(3, callback=lambda sim: count.append(sim.step_count))
        assert count == [1, 2, 3]

    def test_check_state_passes_on_healthy_run(self):
        simulation, _ = self._build()
        simulation.run(5)
        simulation.check_state()

    def test_check_state_detects_nan(self):
        simulation, _ = self._build()
        simulation.grid.component("ex")[0, 0, 0] = np.nan
        with pytest.raises(SimulationError):
            simulation.check_state()

    def test_negative_steps_rejected(self):
        simulation, _ = self._build()
        with pytest.raises(SimulationError):
            simulation.run(-1)
