"""Tests for grid-to-particle interpolation (form factors)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.fields import (GridFieldSource, Shape, UniformField, YeeGrid,
                          interpolate_cic, interpolate_from_yee_grid)
from repro.fields.interpolation import interpolate_component, shape_weights


class TestShapeWeights:
    def test_supports(self):
        assert Shape.NGP.support == 1
        assert Shape.CIC.support == 2
        assert Shape.TSC.support == 3

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
    def test_weights_sum_to_one(self, fraction):
        frac = np.array([fraction])
        for shape in Shape:
            _, weights = shape_weights(shape, frac)
            assert weights.sum() == pytest.approx(1.0, abs=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
    def test_weights_nonnegative(self, fraction):
        for shape in Shape:
            _, weights = shape_weights(shape, np.array([fraction]))
            assert np.all(weights >= -1e-15)

    def test_cic_on_node_is_exact(self):
        indices, weights = shape_weights(Shape.CIC, np.array([3.0]))
        assert weights[0, 0] == pytest.approx(1.0)
        assert indices[0, 0] == 3

    def test_cic_midpoint_splits_evenly(self):
        _, weights = shape_weights(Shape.CIC, np.array([3.5]))
        np.testing.assert_allclose(weights[0], [0.5, 0.5])

    def test_tsc_centre_weight(self):
        _, weights = shape_weights(Shape.TSC, np.array([3.0]))
        np.testing.assert_allclose(weights[0], [0.125, 0.75, 0.125])

    def test_ngp_picks_nearest(self):
        indices, _ = shape_weights(Shape.NGP, np.array([3.4, 3.6]))
        assert list(indices[:, 0]) == [3, 4]


class TestInterpolateComponent:
    def _linear_grid(self, dims=(8, 8, 8)):
        grid = np.zeros(dims)
        xs = np.arange(dims[0])
        grid[:] = (2.0 * xs)[:, None, None]
        return grid

    def test_exact_for_linear_fields_cic(self):
        # CIC reproduces linear functions exactly (away from the wrap).
        values = self._linear_grid()
        positions = np.array([[2.25, 3.0, 3.0], [4.75, 1.0, 6.0]])
        result = interpolate_cic(values, positions, (0, 0, 0), (1, 1, 1))
        np.testing.assert_allclose(result, [4.5, 9.5])

    def test_tsc_exact_for_linear_fields(self):
        values = self._linear_grid()
        positions = np.array([[3.3, 4.0, 4.0]])
        result = interpolate_component(values, positions, (0, 0, 0),
                                       (1, 1, 1), shape=Shape.TSC)
        assert result[0] == pytest.approx(6.6)

    def test_periodic_wrap(self):
        values = np.zeros((4, 4, 4))
        values[0, 0, 0] = 8.0
        # A particle just below the upper boundary sees node 0 through
        # the periodic wrap.
        positions = np.array([[3.75, 0.0, 0.0]])
        result = interpolate_cic(values, positions, (0, 0, 0), (1, 1, 1))
        assert result[0] == pytest.approx(6.0)

    def test_stagger_shifts_sample_points(self):
        values = self._linear_grid()
        positions = np.array([[3.0, 3.0, 3.0]])
        centred = interpolate_component(values, positions, (0, 0, 0),
                                        (1, 1, 1), stagger=(0.5, 0, 0))
        # Array entry i (value 2i) now sits at x = i + 1/2, so the
        # stored samples describe the linear function 2(x - 1/2);
        # interpolation at x = 3 must give 5, not 6.
        assert centred[0] == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            interpolate_cic(np.zeros((2, 2, 2)), np.zeros((3, 2)),
                            (0, 0, 0), (1, 1, 1))
        with pytest.raises(ConfigurationError):
            interpolate_cic(np.zeros((2, 2)), np.zeros((3, 3)),
                            (0, 0, 0), (1, 1, 1))


class TestYeeInterpolation:
    def test_uniform_field_reproduced_everywhere(self, rng):
        grid = YeeGrid((0, 0, 0), (1, 1, 1), (6, 6, 6))
        grid.fill_from_source(UniformField(e=(1, 2, 3), b=(4, 5, 6)), 0.0)
        positions = rng.uniform(0.0, 6.0, (40, 3))
        values = interpolate_from_yee_grid(grid, positions)
        np.testing.assert_allclose(values.ex, 1.0)
        np.testing.assert_allclose(values.by, 5.0)

    def test_matches_manual_component_interpolation(self, rng):
        grid = YeeGrid((0, 0, 0), (1, 1, 1), (5, 5, 5))
        grid.component("ez")[:] = rng.normal(size=(5, 5, 5))
        positions = rng.uniform(0, 5, (10, 3))
        values = interpolate_from_yee_grid(grid, positions)
        from repro.fields.grid import YEE_STAGGER
        manual = interpolate_component(grid.component("ez"), positions,
                                       grid.origin, grid.spacing,
                                       stagger=YEE_STAGGER["ez"])
        np.testing.assert_allclose(values.ez, manual)


class TestGridFieldSource:
    def test_adapts_grid_to_field_source(self, rng):
        grid = YeeGrid((0, 0, 0), (1, 1, 1), (4, 4, 4))
        grid.fill_from_source(UniformField(b=(0, 0, 9.0)), 0.0)
        source = GridFieldSource(grid)
        x = rng.uniform(0, 4, 5)
        values = source.evaluate(x, x, x, 123.0)   # time ignored
        np.testing.assert_allclose(values.bz, 9.0)

    def test_preserves_input_shape(self):
        grid = YeeGrid((0, 0, 0), (1, 1, 1), (4, 4, 4))
        source = GridFieldSource(grid)
        shaped = np.zeros((2, 3))
        assert source.evaluate(shaped, shaped, shaped, 0.0).ex.shape == (2, 3)
