"""Tests for the roofline cost model (the paper's performance mechanisms)."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KernelError
from repro.fp import Precision
from repro.oneapi import (CostModel, DynamicScheduler, KernelSpec,
                          MemoryStream, NumaArenaScheduler, StaticScheduler,
                          StreamKind, ThreadTopology, UsmMemoryManager)
from tests.test_oneapi_device import make_device

N_ITEMS = 1_000_000


def simple_spec(manager=None, kind=StreamKind.READ, bytes_per_item=32,
                flops=100, contiguous=True, name="k"):
    allocation = None
    if manager is not None:
        allocation = manager.virtual(N_ITEMS * bytes_per_item, name=name)
    stream = MemoryStream(name="data", kind=kind,
                          bytes_per_item=bytes_per_item,
                          contiguous=contiguous, allocation=allocation)
    return KernelSpec(name=name, streams=(stream,), flops_per_item=flops)


def run(model, spec, scheduler, topology, precision=Precision.SINGLE,
        jit=True):
    schedule = scheduler.schedule(N_ITEMS, topology)
    return model.time_launch(spec, schedule, precision=precision,
                             jit_compiled=jit)


@pytest.fixture
def device():
    # Large cache threshold is avoided: the 32 MB working set of the
    # default spec exceeds 2 x 10 MB LLC, so DRAM timing applies.
    return make_device()


@pytest.fixture
def topology(device):
    return ThreadTopology(device)


class TestRoofline:
    def test_memory_bound_time_matches_bandwidth(self, device, topology):
        model = CostModel(device)
        manager = UsmMemoryManager()
        spec = simple_spec(manager, flops=1)
        timing = run(model, spec, StaticScheduler(), topology)
        # 32 B/item read-only over 2 domains; each domain's bandwidth
        # is capped by its 4 busy units (4 x 10 GB/s x 1.2 SMT boost =
        # 48 GB/s, below the 50 GB/s DRAM limit).
        expected = N_ITEMS * 32 / 2 / 48e9
        assert timing.memory_seconds == pytest.approx(expected, rel=0.01)
        assert timing.bound == "memory"

    def test_compute_bound_kernel(self, device, topology):
        model = CostModel(device)
        spec = simple_spec(flops=100_000)       # absurdly compute heavy
        timing = run(model, spec, StaticScheduler(), topology)
        assert timing.bound == "compute"
        per_unit = device.clock_hz * device.flops_per_cycle_sp \
            * device.vector_efficiency
        expected = (N_ITEMS / 8) * 100_000 / per_unit
        assert timing.compute_seconds == pytest.approx(expected, rel=0.01)

    def test_double_precision_slower_compute(self, device, topology):
        model = CostModel(device)
        spec = simple_spec(flops=100_000)
        single = run(model, spec, StaticScheduler(), topology,
                     Precision.SINGLE)
        double = run(model, spec, StaticScheduler(), topology,
                     Precision.DOUBLE)
        assert double.compute_seconds == pytest.approx(
            2.0 * single.compute_seconds)

    def test_more_bandwidth_never_slower(self, topology):
        # Monotonicity: raising domain bandwidth cannot increase time.
        times = []
        for bandwidth in (20e9, 40e9, 80e9):
            device = make_device(domain_bandwidth=bandwidth)
            model = CostModel(device)
            spec = simple_spec(flops=1)
            timing = run(model, spec, StaticScheduler(),
                         ThreadTopology(device))
            times.append(timing.total_seconds)
        assert times[0] >= times[1] >= times[2]

    def test_write_costs_double_with_write_allocate(self, device, topology):
        model = CostModel(device)
        read = run(model, simple_spec(kind=StreamKind.READ),
                   StaticScheduler(), topology)
        write = run(model, simple_spec(kind=StreamKind.WRITE),
                    StaticScheduler(), topology)
        read_write = run(model, simple_spec(kind=StreamKind.READ_WRITE),
                         StaticScheduler(), topology)
        assert write.memory_seconds == pytest.approx(
            2.0 * read.memory_seconds)
        assert read_write.memory_seconds == pytest.approx(
            2.0 * read.memory_seconds)

    def test_streaming_store_device(self, topology):
        device = make_device(write_allocate=False)
        model = CostModel(device)
        write = run(model, simple_spec(kind=StreamKind.WRITE),
                    StaticScheduler(), ThreadTopology(device))
        read = run(model, simple_spec(kind=StreamKind.READ),
                   StaticScheduler(), ThreadTopology(device))
        assert write.memory_seconds == pytest.approx(read.memory_seconds)

    def test_cache_resident_working_set_faster(self, device):
        topology = ThreadTopology(device)
        model = CostModel(device)
        small_spec = simple_spec(flops=1)
        schedule = StaticScheduler().schedule(1000, topology)   # 32 KB
        small = model.time_launch(small_spec, schedule,
                                  precision=Precision.SINGLE)
        # Cache-resident bandwidth is 4x DRAM in the model.
        expected = 1000 * 32 / 2 / (50e9 * 4.0)
        assert small.memory_seconds == pytest.approx(expected, rel=0.05)


class TestNumaMechanism:
    def test_static_schedule_is_local_after_first_launch(self, device,
                                                         topology):
        model = CostModel(device)
        manager = UsmMemoryManager()
        spec = simple_spec(manager)
        scheduler = StaticScheduler()
        first = run(model, spec, scheduler, topology)
        second = run(model, spec, scheduler, topology)
        # Only pages straddling two threads' chunk boundaries can go
        # remote under a deterministic static schedule — a few KB out
        # of 32 MB.
        assert first.remote_bytes / first.bytes_moved < 1e-3
        assert second.remote_bytes / second.bytes_moved < 1e-3
        assert first.cold_pages > 0
        assert second.cold_pages == 0

    def test_dynamic_schedule_goes_remote(self, device, topology):
        # The paper's central CPU finding: TBB dynamic scheduling
        # destroys NUMA locality on the 2-socket node.
        model = CostModel(device)
        manager = UsmMemoryManager()
        spec = simple_spec(manager)
        scheduler = DynamicScheduler(seed=0)
        run(model, spec, scheduler, topology)           # first-touch
        steady = run(model, spec, scheduler, topology)
        remote_fraction = steady.remote_bytes / steady.bytes_moved
        assert 0.3 < remote_fraction < 0.7              # ~50% on 2 sockets

    def test_numa_arenas_restore_locality(self, device, topology):
        model = CostModel(device)
        manager = UsmMemoryManager()
        spec = simple_spec(manager)
        scheduler = NumaArenaScheduler(seed=0)
        run(model, spec, scheduler, topology)
        steady = run(model, spec, scheduler, topology)
        # Up to the single page at the arena boundary.
        assert steady.remote_bytes / steady.bytes_moved < 1e-3

    def test_numa_aware_faster_than_naive_dynamic(self, device, topology):
        model = CostModel(device)
        manager = UsmMemoryManager()
        spec_naive = simple_spec(manager, name="naive")
        spec_arena = simple_spec(manager, name="arena")
        naive_sched = DynamicScheduler(seed=1)
        arena_sched = NumaArenaScheduler(seed=1)
        run(model, spec_naive, naive_sched, topology)
        run(model, spec_arena, arena_sched, topology)
        naive = run(model, spec_naive, naive_sched, topology)
        arena = run(model, spec_arena, arena_sched, topology)
        assert naive.total_seconds > arena.total_seconds

    def test_remote_traffic_never_speeds_up(self, device, topology):
        # More remote traffic -> more total time, all else equal.
        model = CostModel(device)
        manager = UsmMemoryManager()
        local_spec = simple_spec(manager, name="local", flops=1)
        remote_spec = simple_spec(manager, name="remote", flops=1)
        # Home the 'remote' allocation entirely in domain 1 while all
        # threads of a 1-domain-restricted topology sit in domain 0.
        remote_spec.streams[0].allocation.touch(
            0, remote_spec.streams[0].allocation.nbytes, 1)
        local_spec.streams[0].allocation.touch(
            0, local_spec.streams[0].allocation.nbytes, 0)
        half = ThreadTopology(device, units=4, threads_per_unit=2)
        local = run(model, local_spec, StaticScheduler(), half)
        remote = run(model, remote_spec, StaticScheduler(), half)
        assert remote.memory_seconds > local.memory_seconds


class TestWarmupCosts:
    def test_jit_charged_when_not_compiled(self, device, topology):
        model = CostModel(device)
        spec = simple_spec()
        cold = run(model, spec, StaticScheduler(), topology, jit=False)
        warm = run(model, spec, StaticScheduler(), topology, jit=True)
        assert cold.jit_seconds == device.jit_compile_seconds
        assert warm.jit_seconds == 0.0
        assert cold.total_seconds > warm.total_seconds

    def test_cold_pages_charged_once(self, device, topology):
        model = CostModel(device)
        manager = UsmMemoryManager()
        spec = simple_spec(manager)
        first = run(model, spec, StaticScheduler(), topology)
        second = run(model, spec, StaticScheduler(), topology)
        assert first.cold_page_seconds > 0.0
        assert second.cold_page_seconds == 0.0


class TestDynamicOverheads:
    def test_dynamic_pays_runtime_penalty(self, device, topology):
        model = CostModel(device, dynamic_efficiency=0.9)
        manager = UsmMemoryManager()
        spec = simple_spec(manager)
        run(model, spec, StaticScheduler(), topology)   # warm the pages
        static = run(model, spec, StaticScheduler(), topology)
        arena = run(model, spec, NumaArenaScheduler(seed=2), topology)
        # Arena locality matches static, so the residual gap is the
        # dynamic-runtime penalty (~10%, the paper's observation).
        ratio = arena.total_seconds / static.total_seconds
        assert 1.02 < ratio < 1.35

    def test_single_thread_excess_penalty(self, device):
        model = CostModel(device, single_thread_excess=0.5)
        spec = simple_spec()
        solo = ThreadTopology(device, units=1, threads_per_unit=1)
        static = run(model, spec, StaticScheduler(), solo)
        dynamic = run(model, spec, DynamicScheduler(seed=3), solo)
        assert dynamic.total_seconds > 1.3 * static.total_seconds

    def test_gpu_strided_efficiency_penalises_aos(self):
        gpu = make_device(numa_domains=1, compute_units=8)
        gpu = dataclasses.replace(gpu, device_type=__import__(
            "repro.oneapi.device", fromlist=["DeviceType"]).DeviceType.GPU)
        model = CostModel(gpu, gpu_strided_efficiency=0.5)
        topology = ThreadTopology(gpu)
        soa = run(model, simple_spec(contiguous=True),
                  StaticScheduler(), topology)
        aos = run(model, simple_spec(contiguous=False),
                  StaticScheduler(), topology)
        assert aos.memory_seconds == pytest.approx(
            2.0 * soa.memory_seconds)

    def test_cpu_strided_pays_compute_penalty_only(self, device, topology):
        model = CostModel(device, strided_compute_penalty=1.2)
        contiguous = run(model, simple_spec(contiguous=True, flops=10_000),
                         StaticScheduler(), topology)
        strided = run(model, simple_spec(contiguous=False, flops=10_000),
                      StaticScheduler(), topology)
        assert strided.memory_seconds == pytest.approx(
            contiguous.memory_seconds)
        assert strided.compute_seconds == pytest.approx(
            1.2 * contiguous.compute_seconds)


class TestScalingProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=100_000, max_value=5_000_000))
    def test_memory_time_linear_in_items(self, n_items):
        # Out of cache, memory time per item is constant: time(n) ~ n.
        device = make_device(cache_per_domain=1.0e3)   # force DRAM path
        model = CostModel(device)
        topology = ThreadTopology(device)
        spec = simple_spec(flops=1)
        schedule = StaticScheduler().schedule(n_items, topology)
        timing = model.time_launch(spec, schedule,
                                   precision=Precision.SINGLE)
        per_item = timing.memory_seconds / n_items
        reference = 32.0 / 2.0 / 48.0e9       # bytes / domains / eff BW
        assert per_item == pytest.approx(reference, rel=0.01)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=1.0, max_value=1.0e5))
    def test_more_flops_never_faster(self, flops):
        device = make_device()
        model = CostModel(device)
        topology = ThreadTopology(device)
        light = run(model, simple_spec(flops=flops), StaticScheduler(),
                    topology)
        heavy = run(model, simple_spec(flops=flops * 2.0),
                    StaticScheduler(), topology)
        assert heavy.total_seconds >= light.total_seconds - 1e-15

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=8))
    def test_more_units_never_slower(self, units):
        device = make_device()
        model = CostModel(device)
        spec = simple_spec(flops=1000)
        few = run(model, spec, StaticScheduler(),
                  ThreadTopology(device, units=units))
        many = run(model, spec, StaticScheduler(),
                   ThreadTopology(device, units=8))
        assert many.total_seconds <= few.total_seconds + 1e-12


class TestValidation:
    def test_bad_parameters_rejected(self, device):
        with pytest.raises(KernelError):
            CostModel(device, dynamic_efficiency=0.0)
        with pytest.raises(KernelError):
            CostModel(device, strided_compute_penalty=0.9)
        with pytest.raises(KernelError):
            CostModel(device, gpu_strided_efficiency=1.5)

    def test_nsps_validation(self, device, topology):
        model = CostModel(device)
        timing = run(model, simple_spec(), StaticScheduler(), topology)
        assert timing.nsps(N_ITEMS) > 0.0
        with pytest.raises(KernelError):
            timing.nsps(0)
