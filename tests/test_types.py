"""Tests for the particle species table."""

import numpy as np
import pytest

from repro.constants import ELECTRON_MASS, ELEMENTARY_CHARGE, PROTON_MASS
from repro.errors import ConfigurationError
from repro.particles import ParticleSpecies, ParticleTypeTable


class TestParticleSpecies:
    def test_fields(self):
        s = ParticleSpecies("muon", 1.88e-25, -ELEMENTARY_CHARGE)
        assert s.name == "muon"
        assert s.mass == pytest.approx(1.88e-25)

    def test_rejects_nonpositive_mass(self):
        with pytest.raises(ConfigurationError):
            ParticleSpecies("ghost", 0.0, 0.0)

    def test_frozen(self):
        s = ParticleSpecies("e", ELECTRON_MASS, -ELEMENTARY_CHARGE)
        with pytest.raises(AttributeError):
            s.mass = 1.0


class TestDefaultTable:
    def test_three_species(self, type_table):
        assert len(type_table) == 3

    def test_electron_is_id_zero(self, type_table):
        assert type_table[0].name == "electron"
        assert type_table[0].charge == pytest.approx(-ELEMENTARY_CHARGE)

    def test_positron_mirror(self, type_table):
        assert type_table[1].mass == type_table[0].mass
        assert type_table[1].charge == -type_table[0].charge

    def test_proton(self, type_table):
        assert type_table[2].mass == pytest.approx(PROTON_MASS)

    def test_id_of(self, type_table):
        assert type_table.id_of("proton") == 2

    def test_id_of_unknown_raises(self, type_table):
        with pytest.raises(ConfigurationError):
            type_table.id_of("graviton")

    def test_iteration_in_id_order(self, type_table):
        names = [s.name for s in type_table]
        assert names == ["electron", "positron", "proton"]


class TestRegistration:
    def test_ids_are_dense(self):
        table = ParticleTypeTable()
        a = table.register(ParticleSpecies("a", 1.0, 1.0))
        b = table.register(ParticleSpecies("b", 2.0, -1.0))
        assert (a, b) == (0, 1)

    def test_duplicate_name_rejected(self):
        table = ParticleTypeTable()
        table.register(ParticleSpecies("a", 1.0, 1.0))
        with pytest.raises(ConfigurationError):
            table.register(ParticleSpecies("a", 2.0, 1.0))

    def test_unknown_id_raises(self, type_table):
        with pytest.raises(ConfigurationError):
            type_table[42]


class TestVectorizedLookup:
    def test_masses_of(self, type_table):
        ids = np.array([0, 2, 1, 0], dtype=np.int16)
        masses = type_table.masses_of(ids)
        assert masses[0] == masses[3] == pytest.approx(ELECTRON_MASS)
        assert masses[1] == pytest.approx(PROTON_MASS)

    def test_charges_of_signs(self, type_table):
        ids = np.array([0, 1], dtype=np.int16)
        charges = type_table.charges_of(ids)
        assert charges[0] < 0 < charges[1]

    def test_out_of_range_ids_rejected(self, type_table):
        with pytest.raises(ConfigurationError):
            type_table.masses_of(np.array([0, 5], dtype=np.int16))
        with pytest.raises(ConfigurationError):
            type_table.charges_of(np.array([-1], dtype=np.int16))

    def test_empty_lookup(self, type_table):
        assert type_table.masses_of(np.array([], dtype=np.int16)).size == 0
