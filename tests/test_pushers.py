"""Tests for alternative pushers (Vay, Higuera-Cary, non-relativistic)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import (ELECTRON_MASS, ELEMENTARY_CHARGE,
                             SPEED_OF_LIGHT, cyclotron_frequency)
from repro.core import (HigueraCaryPusher, MomentumPusher, BorisPusher,
                        NonRelativisticBorisPusher, VayPusher, advance,
                        available_pushers, get_pusher,
                        integrate_trajectory_rk4, setup_leapfrog)
from repro.errors import ConfigurationError
from repro.fields import CrossedField, UniformField
from repro.particles import Layout, ParticleEnsemble

MC = ELECTRON_MASS * SPEED_OF_LIGHT


class TestRegistry:
    def test_all_names(self):
        assert available_pushers() == ["boris", "boris-ll", "boris-nonrel",
                                       "higuera-cary", "vay"]

    def test_register_rejects_duplicates_and_anonymous(self):
        from repro.core import MomentumPusher, register_pusher

        class Nameless(MomentumPusher):
            name = ""

            def push(self, ensemble, fields, dt):
                pass

        with pytest.raises(ConfigurationError):
            register_pusher(Nameless)

        class Duplicate(Nameless):
            name = "boris"

        with pytest.raises(ConfigurationError):
            register_pusher(Duplicate)

    def test_get_pusher_types(self):
        assert isinstance(get_pusher("vay"), VayPusher)
        assert isinstance(get_pusher("higuera-cary"), HigueraCaryPusher)
        assert isinstance(get_pusher("boris-nonrel"),
                          NonRelativisticBorisPusher)

    def test_boris_is_virtual_subclass(self):
        assert isinstance(get_pusher("boris"), MomentumPusher)
        assert isinstance(BorisPusher(), MomentumPusher)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            get_pusher("rk4")


def _gyration_setup(u=1.5):
    b0 = 1.0e4
    gamma = math.sqrt(1.0 + u * u)
    p0 = u * MC
    radius = p0 / (ELEMENTARY_CHARGE * b0 / SPEED_OF_LIGHT)
    omega = cyclotron_frequency(b0, gamma)
    field = UniformField(b=(0.0, 0.0, b0))
    return field, p0, radius, omega, gamma


class TestAgainstRk4:
    @pytest.mark.parametrize("name", ["boris", "vay", "higuera-cary"])
    def test_gyration_matches_rk4(self, name):
        field, p0, radius, omega, _ = _gyration_setup()
        dt = 2.0 * math.pi / omega / 200.0
        steps = 200

        _, rk4_pos, _ = integrate_trajectory_rk4(
            [0.0, -radius, 0.0], [p0, 0.0, 0.0], ELECTRON_MASS,
            -ELEMENTARY_CHARGE, field, dt, steps)

        ensemble = ParticleEnsemble.from_arrays(
            [[0.0, -radius, 0.0]], [[p0, 0.0, 0.0]])
        setup_leapfrog(ensemble, field, dt)
        advance(ensemble, field, dt, steps, pusher=get_pusher(name))
        error = np.linalg.norm(ensemble.positions()[0] - rk4_pos[-1])
        assert error / radius < 5e-3

    @pytest.mark.parametrize("name", ["boris", "vay", "higuera-cary"])
    def test_linear_acceleration_matches_rk4(self, name):
        field = UniformField(e=(2.0e7, 0.0, 0.0))
        dt = 1e-16
        steps = 100
        _, rk4_pos, rk4_mom = integrate_trajectory_rk4(
            [0.0, 0.0, 0.0], [0.0, 0.0, 0.0], ELECTRON_MASS,
            -ELEMENTARY_CHARGE, field, dt, steps)
        ensemble = ParticleEnsemble.from_arrays([[0, 0, 0]], [[0, 0, 0]])
        setup_leapfrog(ensemble, field, dt)
        advance(ensemble, field, dt, steps, pusher=get_pusher(name))
        # Momentum is at step + 1/2; compare against analytic q E t.
        expected_p = -ELEMENTARY_CHARGE * 2.0e7 * (steps - 0.5) * dt
        assert ensemble.momenta()[0, 0] == pytest.approx(expected_p,
                                                         rel=1e-9)
        # Positions agree only to the schemes' discretisation order.
        assert ensemble.positions()[0, 0] == pytest.approx(rk4_pos[-1, 0],
                                                           rel=1e-4)


class TestExbDrift:
    def _drift_momentum(self, field):
        vd = field.drift_velocity[1]
        ud = vd / math.sqrt(1.0 - (vd / SPEED_OF_LIGHT) ** 2)
        return ud * ELECTRON_MASS, vd

    @pytest.mark.parametrize("name", ["vay", "higuera-cary"])
    def test_exact_drift_preserved(self, name):
        field = CrossedField(e=5.0e3, b=1.0e4)
        p_drift, vd = self._drift_momentum(field)
        ensemble = ParticleEnsemble.from_arrays(
            [[0, 0, 0]], [[0.0, p_drift, 0.0]])
        pusher = get_pusher(name)
        dt = 1e-13
        for _ in range(100):
            fields = field.evaluate(ensemble.component("x"),
                                    ensemble.component("y"),
                                    ensemble.component("z"), 0.0)
            pusher.push(ensemble, fields, dt)
        v = ensemble.velocities()[0]
        assert v[1] == pytest.approx(vd, rel=1e-12)
        assert abs(v[0]) < 1e-6 * abs(vd)

    def test_boris_shows_ripple(self):
        # The known Boris artefact Vay (2008) fixes: a drifting
        # particle acquires a small velocity ripple.
        field = CrossedField(e=5.0e3, b=1.0e4)
        p_drift, vd = self._drift_momentum(field)
        ensemble = ParticleEnsemble.from_arrays(
            [[0, 0, 0]], [[0.0, p_drift, 0.0]])
        pusher = get_pusher("boris")
        dt = 1e-13
        ripple = 0.0
        for _ in range(100):
            fields = field.evaluate(ensemble.component("x"),
                                    ensemble.component("y"),
                                    ensemble.component("z"), 0.0)
            pusher.push(ensemble, fields, dt)
            ripple = max(ripple,
                         abs(ensemble.velocities()[0, 1] - vd) / abs(vd))
        assert ripple > 1e-9


class TestNormPreservation:
    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=-3, max_value=3),
           st.floats(min_value=-3, max_value=3),
           st.floats(min_value=-3, max_value=3),
           st.floats(min_value=-1e5, max_value=1e5),
           st.floats(min_value=-1e5, max_value=1e5),
           st.floats(min_value=-1e5, max_value=1e5))
    @pytest.mark.parametrize("name", ["boris", "vay", "higuera-cary"])
    def test_pure_magnetic_preserves_gamma(self, name, ux, uy, uz,
                                           bx, by, bz):
        ensemble = ParticleEnsemble.from_arrays(
            [[0.0, 0.0, 0.0]], [[ux * MC, uy * MC, uz * MC]])
        gamma0 = float(ensemble.component("gamma")[0])
        fields = UniformField(b=(bx, by, bz)).evaluate(
            ensemble.component("x"), ensemble.component("y"),
            ensemble.component("z"), 0.0)
        get_pusher(name).push(ensemble, fields, 1e-14)
        assert ensemble.component("gamma")[0] == pytest.approx(gamma0,
                                                               rel=1e-12)


class TestNonRelativisticLimit:
    def test_agrees_with_boris_at_low_speed(self):
        v = 1.0e7        # v/c ~ 3e-4
        field = UniformField(b=(0.0, 0.0, 1.0e3))
        slow = ParticleEnsemble.from_arrays(
            [[0, 0, 0]], [[ELECTRON_MASS * v, 0, 0]])
        reference = slow.copy()
        dt = 1e-12
        for ens, name in ((slow, "boris-nonrel"), (reference, "boris")):
            pusher = get_pusher(name)
            for _ in range(50):
                fields = field.evaluate(ens.component("x"),
                                        ens.component("y"),
                                        ens.component("z"), 0.0)
                pusher.push(ens, fields, dt)
        np.testing.assert_allclose(slow.positions(), reference.positions(),
                                   rtol=1e-6)

    def test_diverges_from_boris_when_relativistic(self):
        field = UniformField(b=(0.0, 0.0, 1.0e4))
        fast = ParticleEnsemble.from_arrays([[0, 0, 0]], [[2.0 * MC, 0, 0]])
        reference = fast.copy()
        dt = 1e-13
        for ens, name in ((fast, "boris-nonrel"), (reference, "boris")):
            pusher = get_pusher(name)
            for _ in range(100):
                fields = field.evaluate(ens.component("x"),
                                        ens.component("y"),
                                        ens.component("z"), 0.0)
                pusher.push(ens, fields, dt)
        assert not np.allclose(fast.positions(), reference.positions(),
                               rtol=1e-3)


class TestLayoutsAndPrecision:
    @pytest.mark.parametrize("name", ["vay", "higuera-cary", "boris-nonrel"])
    def test_layout_independent(self, name, rng):
        positions = rng.uniform(-1, 1, (8, 3))
        momenta = rng.normal(0, 0.4 * MC, (8, 3))
        field = UniformField(e=(1e5, 0, 1e5), b=(0, 2e5, 0))
        results = []
        for layout in (Layout.AOS, Layout.SOA):
            ensemble = ParticleEnsemble.from_arrays(positions, momenta,
                                                    layout=layout)
            fields = field.evaluate(ensemble.component("x"),
                                    ensemble.component("y"),
                                    ensemble.component("z"), 0.0)
            get_pusher(name).push(ensemble, fields, 1e-16)
            results.append(ensemble.momenta())
        np.testing.assert_array_equal(results[0], results[1])
