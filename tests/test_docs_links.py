"""Docs link checker: every relative markdown link must resolve.

Runs in tier-1 so broken cross-references between README.md and the
files under docs/ fail the build, not a reader.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files whose relative links are checked.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md"] + list((REPO_ROOT / "docs").glob("*.md")))

#: Inline markdown links/images: [text](target) / ![alt](target).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Schemes that point off-repo and are not checked here.
EXTERNAL = ("http://", "https://", "mailto:", "chrome://")


def relative_links(path):
    links = []
    for target in LINK_RE.findall(path.read_text(encoding="utf-8")):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        links.append(target.split("#", 1)[0])   # drop the fragment
    return links


def test_doc_files_exist():
    assert REPO_ROOT / "README.md" in DOC_FILES
    names = {p.name for p in DOC_FILES}
    assert {"ARCHITECTURE.md", "PROFILING.md", "TUNING.md",
            "BENCHMARKS.md", "BACKENDS.md"} <= names


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    broken = [target for target in relative_links(doc)
              if not (doc.parent / target).exists()]
    assert not broken, (f"{doc.relative_to(REPO_ROOT)} has broken "
                        f"relative links: {broken}")
