"""Tests for per-particle precalculated field storage."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, LayoutError
from repro.fields import MDipoleWave, PrecalculatedField, UniformField
from repro.fp import Precision
from repro.particles import Layout, make_ensemble


class TestConstruction:
    def test_layouts(self, layout, precision):
        field = PrecalculatedField(10, precision, layout)
        assert field.layout is layout
        assert field.precision is precision
        assert field.size == 10

    def test_bytes_per_particle(self, precision):
        field = PrecalculatedField(10, precision, Layout.SOA)
        assert field.bytes_per_particle == 6 * precision.itemsize
        assert field.nbytes == 10 * 6 * precision.itemsize

    def test_aos_records_interleaved(self):
        field = PrecalculatedField(4, Precision.DOUBLE, Layout.AOS)
        ex = field.component("ex")
        assert ex.strides[0] == 48          # 6 doubles per record

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            PrecalculatedField(-1)

    def test_unknown_component_rejected(self):
        field = PrecalculatedField(3)
        with pytest.raises(LayoutError):
            field.component("jx")


class TestRefresh:
    def test_matches_direct_evaluation(self, layout):
        wave = MDipoleWave()
        ensemble = make_ensemble(20, layout, Precision.DOUBLE)
        rng = np.random.default_rng(0)
        ensemble.set_positions(rng.uniform(-1e-4, 1e-4, (20, 3)))
        t = 0.3e-15
        field = PrecalculatedField.from_source(wave, ensemble, t)
        direct = wave.evaluate(ensemble.component("x"),
                               ensemble.component("y"),
                               ensemble.component("z"), t)
        np.testing.assert_allclose(field.component("bx"), direct.bx)
        np.testing.assert_allclose(field.component("ey"), direct.ey)

    def test_from_source_matches_ensemble_layout(self, layout):
        ensemble = make_ensemble(5, layout)
        field = PrecalculatedField.from_source(UniformField(), ensemble)
        assert field.layout is layout
        assert field.precision is ensemble.precision

    def test_layout_override(self):
        ensemble = make_ensemble(5, Layout.SOA)
        field = PrecalculatedField.from_source(UniformField(), ensemble,
                                               layout=Layout.AOS)
        assert field.layout is Layout.AOS

    def test_size_mismatch_rejected(self):
        ensemble = make_ensemble(5, Layout.SOA)
        field = PrecalculatedField(4)
        with pytest.raises(LayoutError):
            field.refresh(UniformField(), ensemble, 0.0)

    def test_values_are_views(self):
        ensemble = make_ensemble(3, Layout.SOA)
        field = PrecalculatedField.from_source(
            UniformField(e=(7, 0, 0)), ensemble)
        values = field.values()
        assert np.all(values.ex == 7.0)
        values.ex[0] = 9.0
        assert field.component("ex")[0] == 9.0

    def test_refresh_tracks_moving_particles(self):
        wave = MDipoleWave()
        ensemble = make_ensemble(4, Layout.SOA)
        ensemble.set_positions(np.full((4, 3), 1e-5))
        field = PrecalculatedField.from_source(wave, ensemble, 0.1e-15)
        first = field.component("ex").copy()
        ensemble.set_positions(np.full((4, 3), 3e-5))
        field.refresh(wave, ensemble, 0.1e-15)
        assert not np.allclose(field.component("ex"), first)
