"""Tests for the PIC kernel-graph engine (repro.pic.engine)."""

import numpy as np
import pytest

from repro.backends.registry import queue_for, resolve_device
from repro.errors import ConfigurationError, DeviceLostError
from repro.fp import Precision
from repro.particles import Layout
from repro.pic import PicEngine, build_scenario, pic_state_digest
from repro.validation import assert_hazard_free

N = 48
STEPS = 2


def scenario(name="laser-slab", layout=Layout.SOA,
             precision=Precision.DOUBLE, **kwargs):
    return build_scenario(name, n_particles=N, seed=5, layout=layout,
                          precision=precision, **kwargs)


def engine_for(simulation, fusion):
    return PicEngine(queue_for("iris-xe-max"), simulation, fusion=fusion)


class TestBitExactness:
    def test_all_modes_match_reference(self, layout, precision):
        reference = scenario(layout=layout, precision=precision)
        reference.run(STEPS)
        expected = pic_state_digest(reference)
        for fusion in (None, False, True):
            simulation = scenario(layout=layout, precision=precision)
            engine_for(simulation, fusion).run(STEPS)
            assert pic_state_digest(simulation) == expected, \
                f"fusion={fusion} diverged from the reference run"

    def test_digest_covers_weights_and_grid(self):
        # Ionization mutates only weights + currents; the PIC digest
        # must see that (the push digest deliberately omits weight).
        simulation = scenario()
        before = pic_state_digest(simulation)
        simulation.run(1)
        assert pic_state_digest(simulation) != before

    @pytest.mark.parametrize("name", ["magnetic-mirror",
                                      "relativistic-beam"])
    def test_other_scenarios_fused_equals_legacy(self, name):
        digests = set()
        for fusion in (None, True):
            simulation = scenario(name)
            engine_for(simulation, fusion).run(STEPS)
            digests.add(pic_state_digest(simulation))
        assert len(digests) == 1


class TestGraphLowering:
    def test_node_tags_cover_every_stage(self):
        engine = engine_for(scenario(), True)
        tags = [node.tag for node in engine.record_graph()]
        assert tags == ["gather", "push", "mc:ionize", "deposit",
                        "field-advance"]

    def test_deposit_and_advance_are_barriers(self):
        engine = engine_for(scenario(), True)
        barriers = {node.tag: node.barrier
                    for node in engine.record_graph()}
        assert barriers["deposit"] and barriers["field-advance"]
        assert not barriers["gather"] and not barriers["push"]

    def test_gather_streams_are_transient(self):
        engine = engine_for(scenario(), True)
        gather = next(node for node in engine.record_graph()
                      if node.tag == "gather")
        assert gather.transient
        assert all(name.startswith("pic-fields-")
                   for name in gather.transient)

    def test_deposition_none_drops_the_deposit_node(self):
        engine = engine_for(scenario(deposition="none"), True)
        tags = [node.tag for node in engine.record_graph()]
        assert "deposit" not in tags
        assert tags[-1] == "field-advance"

    def test_fusion_plan_merges_the_particle_chain(self):
        engine = engine_for(scenario(), True)
        engine.step()
        plan = engine.executor.last_plan
        # gather + push + ionize fuse; the two barriers stand alone.
        assert plan.groups == [[0, 1, 2], [3], [4]]
        assert plan.kernels_eliminated == 2

    def test_unfused_plan_keeps_every_launch(self):
        engine = engine_for(scenario(), False)
        engine.step()
        plan = engine.executor.last_plan
        assert all(len(group) == 1 for group in plan.groups)
        assert plan.kernels_eliminated == 0

    def test_fused_step_launches_fewer_kernels(self):
        fused, unfused = (engine_for(scenario(), f) for f in (True, False))
        fused.step()
        unfused.step()
        assert len(fused.queue.commands) < len(unfused.queue.commands)

    def test_roofline_analyzer_accepts_the_pic_graph(self):
        engine = engine_for(scenario(), True)
        from repro.analysis.roofline import analyze_graph
        _, device = resolve_device("iris-xe-max")
        table = analyze_graph(engine.record_graph(), device).render()
        assert "pic-gather" in table and "pic-advance" in table


class TestHazards:
    def test_engine_replay_is_hazard_free(self):
        for fusion in (None, False, True):
            simulation = scenario()
            engine = engine_for(simulation, fusion)
            engine.run(STEPS)
            checked = sum(assert_hazard_free(q) for q in engine.queues())
            assert checked > 0

    def test_validating_executor_passes(self):
        simulation = scenario()
        queue = queue_for("iris-xe-max")
        PicEngine(queue, simulation, fusion=True, validate=True).run(STEPS)

    def test_validate_requires_the_graph_path(self):
        with pytest.raises(ConfigurationError):
            PicEngine(queue_for("iris-xe-max"), scenario(),
                      fusion=None, validate=True)


class TestStepping:
    def test_step_seconds_accumulate(self):
        engine = engine_for(scenario(), True)
        engine.run(3)
        assert len(engine.step_seconds) == 3
        assert all(s > 0.0 for s in engine.step_seconds)

    def test_step_count_advances(self):
        simulation = scenario()
        engine = engine_for(simulation, None)
        engine.run(STEPS)
        assert simulation.step_count == STEPS

    def test_device_loss_interrupts_the_step(self):
        from repro.resilience import fault_injection
        from repro.resilience.faults import FaultPlan, FaultRule
        plan = FaultPlan(name="pic-loss", rules=(
            FaultRule("device-loss", at_ops=(0,), max_injections=1),))
        engine = engine_for(scenario(), True)
        with fault_injection(plan, seed=0):
            with pytest.raises(DeviceLostError):
                engine.run(2)


class TestFacade:
    def config(self, **kwargs):
        from repro.api import PicConfig
        defaults = dict(scenario="laser-slab", n_particles=N, steps=2,
                        warmup=1, seed=5)
        defaults.update(kwargs)
        return PicConfig(**defaults)

    def test_run_pic_modes_agree(self):
        from repro.api import run_pic
        digests = set()
        for fusion in (None, False, True):
            report = run_pic(self.config(fusion=fusion))
            digests.add(report.digest)
            assert report.nsps > 0.0
            assert np.isfinite(report.energy_drift)
        assert len(digests) == 1

    def test_run_pic_validate(self):
        from repro.api import run_pic
        report = run_pic(self.config(fusion=True), validate=True)
        assert report.fusion_groups > 0
        assert report.kernels_eliminated > 0

    def test_unknown_scenario_maps_to_configuration_error(self):
        from repro.api import run_pic
        with pytest.raises(ConfigurationError):
            run_pic(self.config(scenario="warp-core"))

    def test_report_cell_shape(self):
        from repro.api import run_pic
        cell = run_pic(self.config(fusion=True)).as_cell(config="fused")
        assert cell["suite"] == "pic"
        assert "nsps" in cell["metrics"]
        assert cell["extra"]["digest"]
