"""Tests for ParticleProxy: reference semantics over both layouts."""

import math

import pytest

from repro.constants import ELECTRON_MASS, SPEED_OF_LIGHT
from repro.errors import LayoutError
from repro.fp import FP3
from repro.particles import Particle, ParticleProxy, make_ensemble


class TestReferenceSemantics:
    def test_reads_through(self, small_ensemble):
        small_ensemble.component("px")[2] = 7.0
        assert small_ensemble[2].momentum.x == 7.0

    def test_writes_through_vectors(self, small_ensemble):
        proxy = small_ensemble[1]
        proxy.position = FP3(1.0, 2.0, 3.0)
        assert small_ensemble.component("y")[1] == 2.0

    def test_writes_through_scalars(self, small_ensemble):
        proxy = small_ensemble[0]
        proxy.weight = 5.0
        proxy.gamma = 2.0
        proxy.type_id = 2
        assert small_ensemble.component("weight")[0] == 5.0
        assert small_ensemble.component("gamma")[0] == 2.0
        assert small_ensemble.type_ids[0] == 2

    def test_vector_getter_returns_copy(self, small_ensemble):
        proxy = small_ensemble[0]
        vec = proxy.position
        vec.x = 123.0
        assert proxy.position.x != 123.0 or \
            small_ensemble.component("x")[0] == proxy.position.x

    def test_out_of_range_rejected(self, small_ensemble):
        with pytest.raises(LayoutError):
            ParticleProxy(small_ensemble, 64)
        with pytest.raises(LayoutError):
            ParticleProxy(small_ensemble, -1)


class TestParticleApi:
    def test_mass_charge(self, small_ensemble):
        proxy = small_ensemble[0]
        assert proxy.mass == pytest.approx(ELECTRON_MASS)
        assert proxy.charge < 0.0

    def test_update_gamma(self, layout, type_table):
        ensemble = make_ensemble(1, layout, type_table=type_table)
        proxy = ensemble[0]
        mc = ELECTRON_MASS * SPEED_OF_LIGHT
        proxy.momentum = FP3(mc, 0.0, 0.0)
        proxy.update_gamma()
        assert proxy.gamma == pytest.approx(math.sqrt(2.0))

    def test_velocity_matches_ensemble(self, small_ensemble):
        proxy = small_ensemble[5]
        vel = small_ensemble.velocities()[5]
        assert proxy.velocity().x == pytest.approx(vel[0])

    def test_kinetic_energy(self, small_ensemble):
        proxy = small_ensemble[0]
        expected = (proxy.gamma - 1.0) * ELECTRON_MASS * SPEED_OF_LIGHT ** 2
        assert proxy.kinetic_energy() == pytest.approx(expected)


class TestConversion:
    def test_to_particle_materialises(self, small_ensemble):
        particle = small_ensemble[4].to_particle()
        assert isinstance(particle, Particle)
        assert particle.position.x == small_ensemble.component("x")[4]

    def test_to_particle_is_independent(self, small_ensemble):
        particle = small_ensemble[4].to_particle()
        particle.position.x = 1.0e9
        assert small_ensemble.component("x")[4] != 1.0e9

    def test_assign_copies_all_fields(self, small_ensemble):
        source = Particle(FP3(1, 2, 3), FP3(4, 5, 6), 2.5, 3.0, 1)
        small_ensemble[7].assign(source)
        proxy = small_ensemble[7]
        assert proxy.position == FP3(1, 2, 3)
        assert proxy.momentum == FP3(4, 5, 6)
        assert proxy.weight == 2.5
        assert proxy.gamma == 3.0
        assert proxy.type_id == 1

    def test_repr_mentions_index(self, small_ensemble):
        assert "index=3" in repr(small_ensemble[3])
