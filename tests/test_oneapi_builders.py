"""Tests for the datasheet-level device builders."""

import pytest

from repro.errors import ConfigurationError
from repro.fp import Precision
from repro.oneapi.builders import make_cpu_descriptor, make_gpu_descriptor
from repro.oneapi.device import DeviceType


class TestCpuBuilder:
    def test_paper_node_from_datasheet(self):
        # Building the paper's node from public numbers gives a
        # descriptor close to the calibrated one.
        device = make_cpu_descriptor("2x Xeon 8260L", cores_per_socket=24,
                                     sockets=2, clock_ghz=2.4,
                                     memory_channels=6, channel_gbps=23.5)
        assert device.compute_units == 48
        assert device.numa_domains == 2
        assert device.peak_flops(Precision.SINGLE) == \
            pytest.approx(3.69e12, rel=0.01)
        # 6 ch x 23.5 GB/s x 0.62 efficiency ~ 87 GB/s per socket,
        # within 10% of the calibrated 82 GB/s.
        assert device.domain_bandwidth == pytest.approx(82.0e9, rel=0.1)

    def test_laptop_single_socket(self):
        device = make_cpu_descriptor("laptop", cores_per_socket=8,
                                     sockets=1, clock_ghz=3.0,
                                     memory_channels=2,
                                     hyperthreading=False)
        assert device.threads_per_unit == 1
        assert device.smt_bandwidth_boost == 1.0
        assert device.numa_domains == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_cpu_descriptor("bad", cores_per_socket=0)

    def test_type_is_cpu(self):
        device = make_cpu_descriptor("x", cores_per_socket=4)
        assert device.device_type is DeviceType.CPU


class TestGpuBuilder:
    def test_p630_from_datasheet(self):
        device = make_gpu_descriptor("P630", execution_units=24,
                                     clock_ghz=1.15, memory_gbps=35.0)
        assert device.peak_flops(Precision.SINGLE) == \
            pytest.approx(0.44e12, rel=0.01)
        assert device.numa_domains == 1

    def test_discrete_pays_pcie(self):
        integrated = make_gpu_descriptor("iGPU", 24, 1.0, 30.0)
        discrete = make_gpu_descriptor("dGPU", 96, 1.65, 60.0,
                                       discrete=True, pcie_gbps=12.0)
        assert discrete.host_transfer_bandwidth == pytest.approx(12.0e9)
        assert integrated.host_transfer_bandwidth > 1.0e14

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_gpu_descriptor("bad", execution_units=0, clock_ghz=1.0,
                                memory_gbps=10.0)

    def test_usable_with_cost_model(self):
        from repro.fp import Precision as P
        from repro.oneapi import Queue
        from repro.oneapi.runtime import build_virtual_push_spec
        from repro.particles import Layout
        device = make_gpu_descriptor("custom", 64, 1.4, 50.0)
        queue = Queue(device)
        spec = build_virtual_push_spec(1_000_000, Layout.SOA, P.SINGLE,
                                       "precalculated", queue.memory)
        queue.parallel_for(1_000_000, spec, precision=P.SINGLE)  # warm-up
        record = queue.parallel_for(1_000_000, spec, precision=P.SINGLE)
        # 82 effective bytes / 50 GB/s ~ 1.6 ns.
        assert 1.0 < record.nsps() < 3.0
