"""Test package for repro.

Being a package lets test modules share helpers (e.g. the
``make_device`` factory in ``test_oneapi_device``) via absolute
``tests.`` imports under both ``pytest`` and ``python -m pytest``.
"""
