"""Tests: simulated devices must match the paper's Table 1."""

import pytest

from repro.bench import (cost_model_for, device_by_name, iris_xe_max, p630,
                         xeon_8260l_node, DEVICE_NAMES)
from repro.errors import ConfigurationError
from repro.fp import Precision
from repro.oneapi import DeviceType


class TestXeonNode:
    def test_topology_matches_table1(self):
        device = xeon_8260l_node()
        assert device.compute_units == 48        # "48 cores overall"
        assert device.numa_domains == 2          # 2x CPUs
        assert device.threads_per_unit == 2      # hyperthreading

    def test_peak_flops_matches_table1(self):
        # Table 1: 3.6 TFlops single precision.
        device = xeon_8260l_node()
        assert device.peak_flops(Precision.SINGLE) == \
            pytest.approx(3.6e12, rel=0.05)

    def test_clock_matches_table1(self):
        assert xeon_8260l_node().clock_hz == pytest.approx(2.4e9)

    def test_double_is_half_rate(self):
        device = xeon_8260l_node()
        assert device.peak_flops(Precision.DOUBLE) == pytest.approx(
            device.peak_flops(Precision.SINGLE) / 2.0)


class TestGpus:
    def test_p630_matches_table1(self):
        device = p630()
        assert device.compute_units == 24        # 24 EUs
        assert device.device_type is DeviceType.GPU
        # Table 1: 0.441 TFlops single precision.
        assert device.peak_flops(Precision.SINGLE) == \
            pytest.approx(0.441e12, rel=0.05)

    def test_iris_matches_table1(self):
        device = iris_xe_max()
        assert device.compute_units == 96        # 96 EUs
        # Table 1: 2.5 TFlops single precision.
        assert device.peak_flops(Precision.SINGLE) == \
            pytest.approx(2.5e12, rel=0.05)

    def test_iris_double_emulated(self):
        # "double precision operations occur only in an emulation mode".
        device = iris_xe_max()
        assert device.dp_throughput_ratio < 0.1

    def test_gpus_single_domain(self):
        assert p630().numa_domains == 1
        assert iris_xe_max().numa_domains == 1


class TestLookupAndModels:
    def test_device_by_name(self):
        for name in DEVICE_NAMES:
            assert device_by_name(name).compute_units > 0

    def test_unknown_device_rejected(self):
        with pytest.raises(ConfigurationError):
            device_by_name("a100")

    def test_cost_models_constructed(self):
        for name in DEVICE_NAMES:
            device = device_by_name(name)
            model = cost_model_for(device)
            assert model.device is device

    def test_cpu_model_has_dynamic_penalty(self):
        model = cost_model_for(xeon_8260l_node())
        assert model.dynamic_efficiency < 1.0     # the ~10% DPC++ gap

    def test_gpu_models_differ_in_strided_efficiency(self):
        # The Iris Xe Max recovers more strided traffic than the P630
        # (Table 3 AoS/SoA ratios: ~1.5x vs ~2x).
        assert cost_model_for(iris_xe_max()).gpu_strided_efficiency > \
            cost_model_for(p630()).gpu_strided_efficiency
