"""Tests for the SYCL-like queue and runtime configuration."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, KernelError
from repro.oneapi import (DynamicScheduler, KernelSpec, MemoryStream,
                          NumaArenaScheduler, Queue, RuntimeConfig,
                          StaticScheduler, StreamKind)
from repro.oneapi.scheduler import GpuScheduler
from repro.oneapi.device import DeviceType
from tests.test_oneapi_device import make_device


def spec(name="k", flops=10):
    return KernelSpec(name=name, streams=(
        MemoryStream(name="s", kind=StreamKind.READ, bytes_per_item=8),),
        flops_per_item=flops)


class TestRuntimeConfig:
    def test_defaults(self):
        config = RuntimeConfig()
        assert config.runtime == "dpcpp"
        assert config.cpu_places == ""

    def test_rejects_unknown_runtime(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(runtime="tbb")

    def test_rejects_unknown_places(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(cpu_places="numa")


class TestSchedulerSelection:
    def test_openmp_is_static(self):
        queue = Queue(make_device(), RuntimeConfig(runtime="openmp"))
        assert isinstance(queue.scheduler, StaticScheduler)

    def test_dpcpp_default_is_dynamic(self):
        queue = Queue(make_device(), RuntimeConfig(runtime="dpcpp"))
        assert isinstance(queue.scheduler, DynamicScheduler)

    def test_numa_domains_enables_arenas(self):
        queue = Queue(make_device(),
                      RuntimeConfig(cpu_places="numa_domains"))
        assert isinstance(queue.scheduler, NumaArenaScheduler)

    def test_gpu_uses_workgroup_scheduler(self):
        gpu = make_device(device_type=DeviceType.GPU, numa_domains=1)
        queue = Queue(gpu)
        assert isinstance(queue.scheduler, GpuScheduler)

    def test_explicit_override_wins(self):
        override = StaticScheduler()
        queue = Queue(make_device(),
                      RuntimeConfig(scheduler=override))
        assert queue.scheduler is override


class TestKernelLaunches:
    def test_record_accumulation(self):
        queue = Queue(make_device())
        queue.parallel_for(1000, spec())
        queue.parallel_for(1000, spec())
        assert len(queue.records) == 2
        assert queue.total_simulated_seconds > 0.0

    def test_jit_charged_once_per_kernel_name(self):
        queue = Queue(make_device())
        first = queue.parallel_for(1000, spec(name="a"))
        second = queue.parallel_for(1000, spec(name="a"))
        other = queue.parallel_for(1000, spec(name="b"))
        assert first.timing.jit_seconds > 0.0
        assert second.timing.jit_seconds == 0.0
        assert other.timing.jit_seconds > 0.0

    def test_openmp_never_jits(self):
        queue = Queue(make_device(), RuntimeConfig(runtime="openmp"))
        record = queue.parallel_for(1000, spec())
        assert record.timing.jit_seconds == 0.0

    def test_kernel_body_executes_once(self):
        queue = Queue(make_device())
        calls = []
        queue.parallel_for(10, spec(), kernel=lambda: calls.append(1))
        assert calls == [1]

    def test_negative_items_rejected(self):
        queue = Queue(make_device())
        with pytest.raises(KernelError):
            queue.parallel_for(-1, spec())

    def test_nsps_metric(self):
        queue = Queue(make_device())
        record = queue.parallel_for(1_000_000, spec())
        assert record.nsps() == pytest.approx(
            record.simulated_seconds * 1e9 / 1_000_000)

    def test_cost_model_device_mismatch_rejected(self):
        from repro.oneapi import CostModel
        with pytest.raises(ConfigurationError):
            Queue(make_device(), cost_model=CostModel(make_device()))


class TestUsmAndReset:
    def test_malloc_shared_registers_with_queue(self):
        queue = Queue(make_device())
        array = queue.malloc_shared(128, np.float32)
        assert queue.memory.allocation_of(array).nbytes == 512

    def test_reset_records_keeps_jit(self):
        queue = Queue(make_device())
        queue.parallel_for(10, spec(name="x"))
        queue.reset_records()
        assert queue.records == []
        record = queue.parallel_for(10, spec(name="x"))
        assert record.timing.jit_seconds == 0.0

    def test_reset_warmup_recompiles_and_rehomes(self):
        queue = Queue(make_device())
        allocation = queue.memory.virtual(4096)
        allocation.touch(0, 4096, 0)
        queue.parallel_for(10, spec(name="y"))
        queue.reset_warmup()
        assert np.all(allocation.page_domains == -1)
        record = queue.parallel_for(10, spec(name="y"))
        assert record.timing.jit_seconds > 0.0

    def test_wait_is_noop(self):
        Queue(make_device()).wait()
