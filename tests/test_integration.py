"""Cross-module integration tests.

These exercise whole pipelines: pusher + dipole field against the RK4
reference, scenario equivalence through the simulated runtime, the
escape-study physics, and example-level smoke runs.
"""

import math

import numpy as np
import pytest

import repro
from repro.bench import paper_time_step, paper_wave
from repro.core import integrate_trajectory_rk4
from repro.constants import ELECTRON_MASS, ELEMENTARY_CHARGE
from repro.fields import MDipoleWave
from repro.fp import Precision
from repro.particles import Layout
from repro.particles.initializers import (PAPER_SPHERE_RADIUS,
                                          paper_benchmark_ensemble)


class TestDipoleTrajectories:
    def test_boris_matches_rk4_in_dipole_wave(self):
        """A particle in the paper's actual benchmark field must track
        the high-order reference over a fraction of a cycle."""
        wave = MDipoleWave()
        period = 2.0 * math.pi / wave.omega
        start = np.array([0.2 * wave.wavelength, 0.1 * wave.wavelength,
                          -0.15 * wave.wavelength])
        steps = 400
        dt = period / 4000.0

        _, rk4_pos, _ = integrate_trajectory_rk4(
            start, np.zeros(3), ELECTRON_MASS, -ELEMENTARY_CHARGE,
            wave, dt, steps)

        ensemble = repro.ParticleEnsemble.from_arrays([start],
                                                      [np.zeros(3)])
        repro.setup_leapfrog(ensemble, wave, dt)
        repro.advance(ensemble, wave, dt, steps)
        error = np.linalg.norm(ensemble.positions()[0] - rk4_pos[-1])
        travelled = np.linalg.norm(rk4_pos[-1] - start)
        assert error < 0.01 * max(travelled, 1e-6 * wave.wavelength)

    def test_electrons_gain_relativistic_energy(self):
        # At 0.1 PW the focal fields are strongly relativistic: after a
        # cycle electrons must reach gamma >> 1 (the paper's regime).
        wave = paper_wave()
        ensemble = paper_benchmark_ensemble(500, seed=11)
        dt = paper_time_step(0.005)
        repro.setup_leapfrog(ensemble, wave, dt)
        repro.advance(ensemble, wave, dt, 200)
        assert ensemble.component("gamma").max() > 10.0

    def test_particles_escape_focal_region(self):
        # The physics the benchmark studies: rapid escape at 0.1 PW.
        wave = paper_wave()
        ensemble = paper_benchmark_ensemble(500, seed=12)
        dt = paper_time_step(0.005)
        repro.setup_leapfrog(ensemble, wave, dt)
        repro.advance(ensemble, wave, dt, 600)     # 3 cycles
        radii = np.linalg.norm(ensemble.positions(), axis=1)
        remaining = float((radii < wave.wavelength).mean())
        assert remaining < 0.5


class TestScenarioConsistencyAcrossLayouts:
    @pytest.mark.parametrize("precision", [Precision.SINGLE,
                                           Precision.DOUBLE],
                             ids=["float", "double"])
    def test_all_four_configurations_agree(self, precision):
        """AoS/SoA x precalculated/analytical must produce the same
        trajectories (at that precision)."""
        wave = paper_wave()
        dt = paper_time_step()
        results = []
        from repro.core.kernels import (boris_push_analytical,
                                        boris_push_precalculated)
        from repro.fields import PrecalculatedField
        for layout in (Layout.AOS, Layout.SOA):
            for scenario in ("precalculated", "analytical"):
                ensemble = paper_benchmark_ensemble(
                    64, layout=layout, precision=precision, seed=13)
                time = 0.0
                precalc = PrecalculatedField(64, precision, layout)
                for _ in range(3):
                    if scenario == "precalculated":
                        precalc.refresh(wave, ensemble, time)
                        boris_push_precalculated(ensemble, precalc, dt)
                    else:
                        boris_push_analytical(ensemble, wave, time, dt)
                    time += dt
                results.append(ensemble.positions())
        reference = results[0]
        for other in results[1:]:
            np.testing.assert_allclose(other, reference, rtol=2e-5)


class TestSortingImprovesNothingButOrder:
    def test_sorted_ensemble_same_physics(self):
        # Locality sorting is a pure permutation: pushing a sorted
        # ensemble gives the same set of final states.
        wave = paper_wave()
        dt = paper_time_step()
        a = paper_benchmark_ensemble(200, seed=14)
        b = a.copy()
        from repro.particles import sort_by_morton
        sort_by_morton(b, (-PAPER_SPHERE_RADIUS,) * 3,
                       (PAPER_SPHERE_RADIUS / 4,) * 3, (8, 8, 8))
        repro.advance(a, wave, dt, 5)
        repro.advance(b, wave, dt, 5)
        gammas_a = np.sort(a.component("gamma"))
        gammas_b = np.sort(b.component("gamma"))
        np.testing.assert_allclose(gammas_a, gammas_b, rtol=1e-12)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_docstring_flow(self):
        # The flow shown in the package docstring must run as written.
        wave = repro.MDipoleWave()
        electrons = repro.paper_benchmark_ensemble(1000)
        dt = 2.0 * math.pi / wave.omega / 100.0
        repro.setup_leapfrog(electrons, wave, dt)
        repro.advance(electrons, wave, dt, steps=10)
        assert electrons.component("gamma").max() > 1.0
