"""Tests for the roofline analysis utility."""

import pytest

from repro.bench.calibration import iris_xe_max, p630, xeon_8260l_node
from repro.errors import KernelError
from repro.fields import MDipoleWave
from repro.fp import Precision
from repro.oneapi import (KernelSpec, MemoryStream, StreamKind,
                          UsmMemoryManager, analyze_kernel)
from repro.oneapi.runtime import build_virtual_push_spec
from repro.particles import Layout


def push_spec(scenario, field_flops=0.0):
    return build_virtual_push_spec(1_000_000, Layout.SOA, Precision.SINGLE,
                                   scenario, UsmMemoryManager(),
                                   field_flops=field_flops)


class TestAnalysis:
    def test_precalculated_is_memory_bound_everywhere(self):
        # The paper's recurring explanation, as a roofline statement.
        spec = push_spec("precalculated")
        for device in (xeon_8260l_node(), p630(), iris_xe_max()):
            point = analyze_kernel(spec, device)
            assert point.memory_bound, device.name

    def test_arithmetic_intensity_value(self):
        # 222 flops over 82 effective bytes ~ 2.7... with RW doubling:
        # intensity = flops / effective bytes moved.
        spec = push_spec("precalculated")
        point = analyze_kernel(spec, xeon_8260l_node())
        assert point.arithmetic_intensity == pytest.approx(
            spec.flops_per_item / 82.0, rel=0.05)

    def test_analytical_crosses_the_ridge_on_cpu(self):
        # Adding ~250 field flops pushes the kernel right of the CPU
        # ridge — matching the compute-bound analytical float cells.
        spec = push_spec("analytical",
                         field_flops=MDipoleWave.flops_per_evaluation)
        point = analyze_kernel(spec, xeon_8260l_node())
        assert not point.memory_bound

    def test_prediction_matches_paper_scale(self):
        # The bare roofline (no NUMA/scheduling) already lands on the
        # paper's 0.50 ns for the best CPU configuration.
        spec = push_spec("precalculated")
        point = analyze_kernel(spec, xeon_8260l_node())
        assert point.predicted_nsps == pytest.approx(0.50, rel=0.05)

    def test_double_precision_halves_compute_roof(self):
        spec = push_spec("analytical", field_flops=250)
        single = analyze_kernel(spec, xeon_8260l_node(), Precision.SINGLE)
        double = analyze_kernel(spec, xeon_8260l_node(), Precision.DOUBLE)
        assert double.compute_ceiling_flops == pytest.approx(
            single.compute_ceiling_flops / 2.0)

    def test_ridge_ordering_across_devices(self):
        # Iris Xe Max has the most flops per byte of bandwidth, so the
        # widest memory-bound region.
        spec = push_spec("precalculated")
        ridges = {d.name: analyze_kernel(spec, d).ridge_intensity
                  for d in (xeon_8260l_node(), p630(), iris_xe_max())}
        assert ridges["Intel Iris Xe Max"] > ridges["Intel P630"]

    def test_requires_memory_streams(self):
        spec = KernelSpec(name="pure-flops", streams=(), flops_per_item=10)
        with pytest.raises(KernelError):
            analyze_kernel(spec, xeon_8260l_node())

    def test_write_allocate_lowers_intensity(self):
        stream = MemoryStream(name="out", kind=StreamKind.WRITE,
                              bytes_per_item=8)
        spec = KernelSpec(name="writer", streams=(stream,),
                          flops_per_item=80)
        with_rfo = analyze_kernel(spec, xeon_8260l_node())
        import dataclasses
        no_rfo_device = dataclasses.replace(xeon_8260l_node(),
                                            write_allocate=False)
        without_rfo = analyze_kernel(spec, no_rfo_device)
        assert with_rfo.arithmetic_intensity == pytest.approx(
            without_rfo.arithmetic_intensity / 2.0)


class TestCliRoofline:
    def test_command_prints_table(self, capsys):
        from repro.cli import main
        assert main(["roofline"]) == 0
        out = capsys.readouterr().out
        assert "ridge" in out
        assert "memory" in out
