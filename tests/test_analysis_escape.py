"""Tests for the escape-study analysis module."""

import math

import numpy as np
import pytest

from repro.analysis import (EscapeCurve, escape_rate_sweep,
                            remaining_fraction, run_escape_study)
from repro.errors import ConfigurationError
from repro.particles import ParticleEnsemble


class TestRemainingFraction:
    def test_counts_inside_sphere(self):
        positions = [[0.0, 0.0, 0.0], [0.5, 0.0, 0.0], [2.0, 0.0, 0.0]]
        ensemble = ParticleEnsemble.from_arrays(positions,
                                                np.zeros((3, 3)))
        assert remaining_fraction(ensemble, 1.0) == pytest.approx(2.0 / 3.0)

    def test_center_offset(self):
        ensemble = ParticleEnsemble.from_arrays([[5.0, 0.0, 0.0]],
                                                np.zeros((1, 3)))
        assert remaining_fraction(ensemble, 1.0, center=(5, 0, 0)) == 1.0
        assert remaining_fraction(ensemble, 1.0) == 0.0

    def test_rejects_bad_radius(self):
        ensemble = ParticleEnsemble.from_arrays([[0, 0, 0]],
                                                np.zeros((1, 3)))
        with pytest.raises(ConfigurationError):
            remaining_fraction(ensemble, 0.0)


class TestEscapeCurve:
    def _exponential_curve(self, rate, samples=20):
        curve = EscapeCurve(power=1.0e21)
        for i in range(samples):
            t = i * 0.25
            curve.record(t, math.exp(-rate * t))
        return curve

    def test_rate_recovered_from_exponential(self):
        curve = self._exponential_curve(rate=1.3)
        assert curve.escape_rate() == pytest.approx(1.3, rel=1e-6)

    def test_residence_time(self):
        curve = self._exponential_curve(rate=2.0)
        assert curve.residence_time() == pytest.approx(0.5, rel=1e-6)

    def test_no_escape_gives_zero_rate(self):
        curve = EscapeCurve(power=1.0)
        for t in range(5):
            curve.record(float(t), 1.0)
        assert curve.escape_rate() == 0.0
        assert curve.residence_time() == math.inf


class TestRunEscapeStudy:
    @pytest.fixture(scope="class")
    def paper_curve(self):
        # 0.1 PW = 1e21 erg/s, small but sufficient ensemble.
        return run_escape_study(1.0e21, n_particles=800, cycles=3,
                                samples_per_cycle=2, steps_per_cycle=100,
                                seed=1)

    def test_starts_full(self, paper_curve):
        assert paper_curve.fractions[0] == 1.0

    def test_monotone_time_axis(self, paper_curve):
        assert np.all(np.diff(paper_curve.times) > 0.0)
        assert paper_curve.times[-1] == pytest.approx(3.0, rel=1e-9)

    def test_rapid_escape_at_paper_power(self, paper_curve):
        # The paper picks 0.1 PW because escape is fast: well under
        # half the electrons remain after three cycles.
        assert paper_curve.fractions[-1] < 0.3
        assert paper_curve.escape_rate() > 0.5

    def test_relativistic_gammas(self, paper_curve):
        assert paper_curve.max_gamma > 10.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_escape_study(1.0e21, cycles=0)
        with pytest.raises(ConfigurationError):
            run_escape_study(1.0e21, samples_per_cycle=3,
                             steps_per_cycle=100)


class TestPowerDependence:
    def test_weak_wave_confines_longer(self):
        # At 0.1 GW (below the fast-escape window) fields barely move
        # the electrons; at 0.1 PW they blow the sphere apart.
        curves = escape_rate_sweep([1.0e16, 1.0e21], n_particles=400,
                                   cycles=3, samples_per_cycle=2,
                                   steps_per_cycle=100, seed=2)
        weak = curves[1.0e16]
        strong = curves[1.0e21]
        assert weak.fractions[-1] > strong.fractions[-1]
        assert weak.escape_rate() < strong.escape_rate()

    def test_sweep_requires_powers(self):
        with pytest.raises(ConfigurationError):
            escape_rate_sweep([])
