"""Tests for the paraxial Gaussian beam."""

import math

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError
from repro.fields import GaussianBeam, MDipoleWave

OMEGA = 2.1e15
WAVELENGTH = 2.0 * math.pi * SPEED_OF_LIGHT / OMEGA


def beam(power=1.0e21, waist=3.0 * WAVELENGTH):
    return GaussianBeam(power, OMEGA, waist)


class TestGeometry:
    def test_rayleigh_range(self):
        b = beam()
        expected = 0.5 * (OMEGA / SPEED_OF_LIGHT) * b.waist ** 2
        assert b.rayleigh_range == pytest.approx(expected)

    def test_waist_doubles_area_at_rayleigh_range(self):
        b = beam()
        w = b.beam_radius(np.array([b.rayleigh_range]))[0]
        assert w == pytest.approx(math.sqrt(2.0) * b.waist)

    def test_radius_symmetric(self):
        b = beam()
        x = np.array([1.0e-3])
        assert b.beam_radius(x)[0] == b.beam_radius(-x)[0]

    def test_rejects_subwavelength_waist(self):
        with pytest.raises(ConfigurationError):
            GaussianBeam(1.0e21, OMEGA, 0.5 * WAVELENGTH)

    def test_rejects_bad_power_and_omega(self):
        with pytest.raises(ConfigurationError):
            GaussianBeam(0.0, OMEGA, 3 * WAVELENGTH)
        with pytest.raises(ConfigurationError):
            GaussianBeam(1.0e21, -1.0, 3 * WAVELENGTH)


class TestFieldStructure:
    def test_on_axis_amplitude_at_focus(self):
        b = beam()
        values = b.evaluate(np.zeros(1), np.zeros(1), np.zeros(1), 0.0)
        assert abs(values.ey[0]) == pytest.approx(b.amplitude, rel=1e-12)

    def test_amplitude_formula_from_power(self):
        b = beam()
        expected = math.sqrt(16.0 * b.power
                             / (SPEED_OF_LIGHT * b.waist ** 2))
        assert b.amplitude == pytest.approx(expected)

    def test_transverse_gaussian_profile(self):
        b = beam()
        r = b.waist
        centre = b.evaluate(np.zeros(1), np.zeros(1), np.zeros(1), 0.0)
        edge = b.evaluate(np.zeros(1), np.array([r]), np.zeros(1), 0.0)
        # At the focus the phase is transversely flat (R -> inf), so
        # the ratio is the pure envelope: exp(-1).
        assert abs(edge.ey[0] / centre.ey[0]) == pytest.approx(
            math.exp(-1.0), rel=1e-9)

    def test_amplitude_decays_along_axis(self):
        b = beam()
        x = np.array([0.0, b.rayleigh_range, 3.0 * b.rayleigh_range])
        # Compare envelopes via w(x): on-axis amplitude ~ w0/w.
        w = b.beam_radius(x)
        assert w[0] < w[1] < w[2]

    def test_transverse_field_components_only(self):
        b = beam()
        rng = np.random.default_rng(0)
        pts = rng.uniform(-5e-4, 5e-4, (20, 3))
        values = b.evaluate(pts[:, 0], pts[:, 1], pts[:, 2], 1e-16)
        assert np.all(values.ex == 0.0)
        assert np.all(values.bx == 0.0)
        np.testing.assert_array_equal(values.ey, values.bz)


class TestComparisonWithDipole:
    def test_dipole_focus_beats_gaussian_at_same_power(self):
        """The physics point of refs [20][24]: 4-pi (dipole) focusing
        concentrates the same power into higher peak field than any
        paraxial beam."""
        power = 1.0e21
        dipole = MDipoleWave(power=power)
        lens = GaussianBeam(power, OMEGA, waist=3.0 * WAVELENGTH)
        # Dipole peak B at focus (sin = 1): (4/3) A0.
        dipole_peak = 4.0 / 3.0 * dipole.amplitude
        assert dipole_peak > 3.0 * lens.peak_field()

    def test_tighter_waist_higher_field(self):
        loose = GaussianBeam(1.0e21, OMEGA, 6.0 * WAVELENGTH)
        tight = GaussianBeam(1.0e21, OMEGA, 2.0 * WAVELENGTH)
        assert tight.peak_field() == pytest.approx(
            3.0 * loose.peak_field(), rel=1e-12)
