"""Tests for regular grids and the Yee grid."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fields import MDipoleWave, RegularGrid3D, UniformField, YeeGrid
from repro.fields.grid import YEE_STAGGER


class TestRegularGrid:
    def test_geometry(self):
        grid = RegularGrid3D((1, 2, 3), (0.5, 1.0, 2.0), (4, 2, 2))
        assert grid.upper == (3.0, 4.0, 7.0)
        assert grid.extent == (2.0, 2.0, 4.0)
        assert grid.num_cells == 16
        assert grid.cell_volume == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RegularGrid3D((0, 0, 0), (0.0, 1, 1), (4, 4, 4))
        with pytest.raises(ConfigurationError):
            RegularGrid3D((0, 0, 0), (1, 1, 1), (0, 4, 4))

    def test_node_coordinates(self):
        grid = RegularGrid3D((10.0, 0, 0), (2.0, 1, 1), (3, 1, 1))
        np.testing.assert_allclose(grid.node_coordinates(0),
                                   [10.0, 12.0, 14.0])
        np.testing.assert_allclose(grid.node_coordinates(0, stagger=0.5),
                                   [11.0, 13.0, 15.0])

    def test_node_coordinates_bad_axis(self):
        grid = RegularGrid3D((0, 0, 0), (1, 1, 1), (2, 2, 2))
        with pytest.raises(ConfigurationError):
            grid.node_coordinates(3)

    def test_wrap_positions(self):
        grid = RegularGrid3D((0, 0, 0), (1, 1, 1), (4, 4, 4))
        wrapped = grid.wrap_positions(np.array([[4.5, -0.5, 8.25]]))
        np.testing.assert_allclose(wrapped, [[0.5, 3.5, 0.25]])

    def test_wrap_respects_origin(self):
        grid = RegularGrid3D((10, 10, 10), (1, 1, 1), (2, 2, 2))
        wrapped = grid.wrap_positions(np.array([[9.5, 12.5, 10.5]]))
        np.testing.assert_allclose(wrapped, [[11.5, 10.5, 10.5]])

    def test_repr(self):
        grid = RegularGrid3D((0, 0, 0), (1, 1, 1), (2, 2, 2))
        assert "dims=(2, 2, 2)" in repr(grid)


class TestYeeGrid:
    def test_six_components_allocated(self):
        grid = YeeGrid((0, 0, 0), (1, 1, 1), (4, 3, 2))
        for name in ("ex", "ey", "ez", "bx", "by", "bz"):
            assert grid.component(name).shape == (4, 3, 2)

    def test_unknown_component_rejected(self):
        grid = YeeGrid((0, 0, 0), (1, 1, 1), (2, 2, 2))
        with pytest.raises(ConfigurationError):
            grid.component("hx")

    def test_stagger_positions(self):
        grid = YeeGrid((0, 0, 0), (2.0, 2.0, 2.0), (2, 2, 2))
        # Ex lives at (i + 1/2, j, k).
        assert grid.component_coordinates("ex", 0)[0] == pytest.approx(1.0)
        assert grid.component_coordinates("ex", 1)[0] == pytest.approx(0.0)
        # Bx lives at (i, j + 1/2, k + 1/2).
        assert grid.component_coordinates("bx", 0)[0] == pytest.approx(0.0)
        assert grid.component_coordinates("bx", 2)[0] == pytest.approx(1.0)

    def test_stagger_table_complete(self):
        assert set(YEE_STAGGER) == {"ex", "ey", "ez", "bx", "by", "bz"}

    def test_currents_and_clear(self):
        grid = YeeGrid((0, 0, 0), (1, 1, 1), (2, 2, 2))
        grid.currents["jx"][0, 0, 0] = 5.0
        grid.clear_currents()
        assert np.all(grid.currents["jx"] == 0.0)

    def test_fill_from_uniform_source(self):
        grid = YeeGrid((0, 0, 0), (1, 1, 1), (3, 3, 3))
        grid.fill_from_source(UniformField(e=(1, 2, 3), b=(4, 5, 6)), 0.0)
        assert np.all(grid.component("ey") == 2.0)
        assert np.all(grid.component("bz") == 6.0)

    def test_fill_from_dipole_matches_pointwise(self):
        wave = MDipoleWave()
        spacing = wave.wavelength / 8
        grid = YeeGrid((-2 * spacing, -2 * spacing, -2 * spacing),
                       (spacing, spacing, spacing), (4, 4, 4))
        t = 0.3e-15
        grid.fill_from_source(wave, t)
        x = grid.component_coordinates("bz", 0)[1]
        y = grid.component_coordinates("bz", 1)[2]
        z = grid.component_coordinates("bz", 2)[0]
        direct = wave.evaluate(np.array([x]), np.array([y]),
                               np.array([z]), t)
        assert grid.component("bz")[1, 2, 0] == pytest.approx(direct.bz[0])

    def test_field_energy_uniform(self):
        grid = YeeGrid((0, 0, 0), (2.0, 1.0, 1.0), (2, 2, 2))
        grid.fill_from_source(UniformField(e=(3.0, 0, 0)), 0.0)
        # u = E^2 / (8 pi) per unit volume; volume = 16.
        expected = 9.0 / (8.0 * np.pi) * 16.0
        assert grid.field_energy() == pytest.approx(expected)

    def test_field_energy_zero_for_empty_grid(self):
        grid = YeeGrid((0, 0, 0), (1, 1, 1), (2, 2, 2))
        assert grid.field_energy() == 0.0
