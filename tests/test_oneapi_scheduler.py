"""Tests for the static / dynamic / NUMA-arena schedulers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.oneapi import (Chunk, DynamicScheduler, GpuScheduler,
                          NumaArenaScheduler, StaticScheduler,
                          ThreadTopology)
from tests.test_oneapi_device import make_device


@pytest.fixture
def device():
    return make_device()        # 8 units, 2 domains, 2 threads/unit


@pytest.fixture
def topology(device):
    return ThreadTopology(device)


class TestThreadTopology:
    def test_full_machine(self, topology):
        assert topology.n_threads == 16
        assert topology.units == 8

    def test_compact_binding(self, topology):
        # Threads fill units in order, both hyperthreads together.
        assert topology.unit_of(0) == 0
        assert topology.unit_of(1) == 0
        assert topology.unit_of(2) == 1
        assert topology.domain_of(7) == 0     # unit 3, domain 0
        assert topology.domain_of(8) == 1     # unit 4, domain 1

    def test_restricted_units(self, device):
        topology = ThreadTopology(device, units=3, threads_per_unit=1)
        assert topology.n_threads == 3
        assert topology.active_domains == [0]

    def test_threads_in_domain(self, topology):
        assert topology.threads_in_domain(0) == list(range(8))
        assert topology.threads_in_domain(1) == list(range(8, 16))

    def test_active_units_in_domain(self, device):
        topology = ThreadTopology(device, units=5, threads_per_unit=2)
        assert topology.active_units_in_domain(0) == 4
        assert topology.active_units_in_domain(1) == 1

    def test_validation(self, device):
        with pytest.raises(ConfigurationError):
            ThreadTopology(device, units=9)
        with pytest.raises(ConfigurationError):
            ThreadTopology(device, threads_per_unit=3)
        with pytest.raises(ConfigurationError):
            ThreadTopology(device).unit_of(16)


def _assert_covers(schedule, n_items):
    """Every item appears in exactly one chunk."""
    seen = np.zeros(n_items, dtype=int)
    for chunk in schedule.chunks:
        seen[chunk.start:chunk.end] += 1
    assert np.all(seen == 1)


class TestStaticScheduler:
    def test_covers_all_items(self, topology):
        schedule = StaticScheduler().schedule(1000, topology)
        _assert_covers(schedule, 1000)
        assert not schedule.dynamic

    def test_one_chunk_per_thread(self, topology):
        schedule = StaticScheduler().schedule(1600, topology)
        assert len(schedule.chunks) == 16
        assert schedule.max_chunks_on_a_thread() == 1

    def test_deterministic_across_calls(self, topology):
        scheduler = StaticScheduler()
        first = scheduler.schedule(999, topology).chunks
        second = scheduler.schedule(999, topology).chunks
        assert first == second

    def test_balanced(self, topology):
        schedule = StaticScheduler().schedule(1003, topology)
        sizes = [c.size for c in schedule.chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_fewer_items_than_threads(self, topology):
        schedule = StaticScheduler().schedule(3, topology)
        _assert_covers(schedule, 3)
        assert len(schedule.chunks) == 3


class TestDynamicScheduler:
    def test_covers_all_items(self, topology):
        schedule = DynamicScheduler(seed=1).schedule(1000, topology)
        _assert_covers(schedule, 1000)
        assert schedule.dynamic

    def test_assignment_changes_between_calls(self, topology):
        scheduler = DynamicScheduler(seed=2)
        first = scheduler.schedule(4096, topology)
        second = scheduler.schedule(4096, topology)
        first_map = {(c.start, c.end): c.thread for c in first.chunks}
        second_map = {(c.start, c.end): c.thread for c in second.chunks}
        moved = sum(1 for key in first_map
                    if second_map.get(key) != first_map[key])
        assert moved > 0      # work-stealing reshuffles ownership

    def test_explicit_grain_size(self, topology):
        schedule = DynamicScheduler(grain_size=100).schedule(1000, topology)
        sizes = {c.size for c in schedule.chunks}
        assert sizes == {100}

    def test_auto_grain_targets_grains_per_thread(self, topology):
        scheduler = DynamicScheduler(target_grains_per_thread=4)
        schedule = scheduler.schedule(16 * 4 * 50, topology)
        assert len(schedule.chunks) == pytest.approx(64, abs=2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DynamicScheduler(grain_size=0)
        with pytest.raises(ConfigurationError):
            DynamicScheduler(target_grains_per_thread=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=5000))
    def test_always_covers(self, n_items):
        device = make_device()
        topology = ThreadTopology(device)
        schedule = DynamicScheduler(seed=3).schedule(n_items, topology)
        _assert_covers(schedule, n_items)


class TestNumaArenaScheduler:
    def test_covers_all_items(self, topology):
        schedule = NumaArenaScheduler(seed=4).schedule(1000, topology)
        _assert_covers(schedule, 1000)

    def test_domains_own_static_halves(self, topology):
        # Domain 0's threads only ever process the first half of the
        # iteration space; domain 1's the second half.
        scheduler = NumaArenaScheduler(seed=5)
        for _ in range(3):
            schedule = scheduler.schedule(1000, topology)
            for chunk in schedule.chunks:
                domain = topology.domain_of(chunk.thread)
                if domain == 0:
                    assert chunk.end <= 500
                else:
                    assert chunk.start >= 500

    def test_dynamic_within_domain(self, topology):
        scheduler = NumaArenaScheduler(seed=6)
        first = scheduler.schedule(4096, topology)
        second = scheduler.schedule(4096, topology)
        first_map = {(c.start, c.end): c.thread for c in first.chunks}
        second_map = {(c.start, c.end): c.thread for c in second.chunks}
        moved = sum(1 for key in first_map
                    if second_map.get(key) != first_map[key])
        assert moved > 0

    def test_single_domain_topology(self, device):
        topology = ThreadTopology(device, units=4, threads_per_unit=2)
        schedule = NumaArenaScheduler(seed=7).schedule(100, topology)
        _assert_covers(schedule, 100)
        assert all(topology.domain_of(c.thread) == 0
                   for c in schedule.chunks)

    def test_uneven_domain_split_proportional(self, device):
        # 5 units: 4 in domain 0, 1 in domain 1 -> 8:2 thread split.
        topology = ThreadTopology(device, units=5, threads_per_unit=2)
        schedule = NumaArenaScheduler(seed=8).schedule(1000, topology)
        domain0_items = sum(c.size for c in schedule.chunks
                            if topology.domain_of(c.thread) == 0)
        assert domain0_items == 800


class TestGpuScheduler:
    def test_workgroup_chunks(self, device):
        gpu = make_device(device_type=make_device().device_type,
                          numa_domains=1, compute_units=8)
        topology = ThreadTopology(gpu)
        schedule = GpuScheduler(workgroup_size=256).schedule(1000, topology)
        _assert_covers(schedule, 1000)
        assert [c.size for c in schedule.chunks] == [256, 256, 256, 232]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GpuScheduler(workgroup_size=0)


class TestScheduleAccounting:
    def test_items_per_thread(self, topology):
        schedule = StaticScheduler().schedule(1600, topology)
        per_thread = schedule.items_per_thread()
        assert all(v == 100 for v in per_thread.values())

    def test_items_per_unit_aggregates_hyperthreads(self, topology):
        schedule = StaticScheduler().schedule(1600, topology)
        per_unit = schedule.items_per_unit()
        assert all(v == 200 for v in per_unit.values())

    def test_coverage_mismatch_rejected(self, topology):
        from repro.oneapi import Schedule
        with pytest.raises(ConfigurationError):
            Schedule([Chunk(0, 5, 0)], topology, 10, dynamic=False)
