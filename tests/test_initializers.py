"""Tests for ensemble initializers."""

import numpy as np
import pytest

from repro.constants import ELECTRON_MASS
from repro.errors import ConfigurationError
from repro.fp import Precision
from repro.particles import Layout, cold_sphere, uniform_box, \
    paper_benchmark_ensemble
from repro.particles.initializers import (PAPER_SPHERE_RADIUS,
                                          PAPER_WAVELENGTH,
                                          maxwellian_momenta,
                                          uniform_sphere_positions)


class TestUniformSphere:
    def test_all_inside(self):
        pos = uniform_sphere_positions(2000, radius=2.0, seed=1)
        radii = np.linalg.norm(pos, axis=1)
        assert radii.max() <= 2.0

    def test_volume_uniformity(self):
        # For uniform density, P(r < R/2) = 1/8.
        pos = uniform_sphere_positions(40000, radius=1.0, seed=2)
        radii = np.linalg.norm(pos, axis=1)
        inner = float((radii < 0.5).mean())
        assert inner == pytest.approx(0.125, abs=0.01)

    def test_centre_offset(self):
        pos = uniform_sphere_positions(5000, radius=0.1,
                                       center=(10.0, 0.0, 0.0), seed=3)
        assert pos[:, 0].mean() == pytest.approx(10.0, abs=0.01)

    def test_isotropy(self):
        pos = uniform_sphere_positions(40000, radius=1.0, seed=4)
        mean = pos.mean(axis=0)
        assert np.abs(mean).max() < 0.02

    def test_rejects_bad_radius(self):
        with pytest.raises(ConfigurationError):
            uniform_sphere_positions(10, radius=-1.0)

    def test_deterministic_with_seed(self):
        a = uniform_sphere_positions(100, 1.0, seed=5)
        b = uniform_sphere_positions(100, 1.0, seed=5)
        np.testing.assert_array_equal(a, b)


class TestColdSphere:
    def test_at_rest(self, layout):
        ensemble = cold_sphere(50, 1.0, layout=layout, seed=0)
        assert np.all(ensemble.momenta() == 0.0)
        assert np.all(ensemble.component("gamma") == 1.0)

    def test_layout_and_precision(self):
        ensemble = cold_sphere(10, 1.0, layout=Layout.AOS,
                               precision=Precision.SINGLE, seed=0)
        assert ensemble.layout is Layout.AOS
        assert ensemble.precision is Precision.SINGLE

    def test_weight_and_type(self):
        ensemble = cold_sphere(10, 1.0, type_id=2, weight=4.0, seed=0)
        assert np.all(ensemble.type_ids == 2)
        assert np.all(ensemble.component("weight") == 4.0)


class TestUniformBox:
    def test_within_bounds(self):
        ensemble = uniform_box(500, (0, 0, 0), (1, 2, 3), seed=0)
        pos = ensemble.positions()
        assert pos.min() >= 0.0
        assert np.all(pos.max(axis=0) <= [1, 2, 3])

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            uniform_box(10, (0, 0, 0), (1, -1, 1))


class TestMaxwellian:
    def test_moments(self):
        temperature = 1.0e-9      # erg
        momenta = maxwellian_momenta(200_000, temperature, ELECTRON_MASS,
                                     seed=0)
        variance = momenta.var(axis=0)
        np.testing.assert_allclose(variance,
                                   ELECTRON_MASS * temperature, rtol=0.02)

    def test_zero_temperature(self):
        momenta = maxwellian_momenta(100, 0.0, ELECTRON_MASS, seed=0)
        assert np.all(momenta == 0.0)

    def test_rejects_negative_temperature(self):
        with pytest.raises(ConfigurationError):
            maxwellian_momenta(10, -1.0, ELECTRON_MASS)

    def test_rejects_bad_mass(self):
        with pytest.raises(ConfigurationError):
            maxwellian_momenta(10, 1.0, 0.0)


class TestPaperEnsemble:
    def test_paper_geometry(self):
        # 0.6 lambda sphere of 0.9 um light.
        assert PAPER_WAVELENGTH == pytest.approx(0.9e-4)
        assert PAPER_SPHERE_RADIUS == pytest.approx(0.54e-4)

    def test_electrons_at_rest_in_sphere(self):
        ensemble = paper_benchmark_ensemble(1000, seed=0)
        radii = np.linalg.norm(ensemble.positions(), axis=1)
        assert radii.max() <= PAPER_SPHERE_RADIUS
        assert np.all(ensemble.momenta() == 0.0)
        assert np.all(ensemble.type_ids == 0)
