"""Tests for charge and current deposition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import ELECTRON_MASS, ELEMENTARY_CHARGE, SPEED_OF_LIGHT
from repro.errors import SimulationError
from repro.fields import YeeGrid
from repro.particles import ParticleEnsemble
from repro.pic import (ACCUMULATION_DTYPE, charge_weight, deposit_charge,
                       deposit_current_direct, deposit_current_esirkepov,
                       invalidate_charge_weight)


def grid8():
    return YeeGrid((0.0, 0.0, 0.0), (1.0, 1.0, 1.0), (8, 8, 8))


def electrons_at(positions, momenta=None):
    pos = np.asarray(positions, dtype=np.float64)
    mom = np.zeros_like(pos) if momenta is None else np.asarray(momenta)
    return ParticleEnsemble.from_arrays(pos, mom)


def discrete_divergence(grid):
    div = np.zeros(grid.dims)
    for axis, name in enumerate(("jx", "jy", "jz")):
        j = grid.currents[name]
        div += (j - np.roll(j, 1, axis=axis)) / grid.spacing[axis]
    return div


class TestChargeDeposition:
    def test_total_charge_conserved(self, rng):
        grid = grid8()
        ensemble = electrons_at(rng.uniform(0, 8, (50, 3)))
        rho = deposit_charge(grid, ensemble)
        total = rho.sum() * grid.cell_volume
        assert total == pytest.approx(-50 * ELEMENTARY_CHARGE, rel=1e-12)

    def test_particle_on_node_deposits_to_single_node(self):
        grid = grid8()
        ensemble = electrons_at([[3.0, 4.0, 5.0]])
        rho = deposit_charge(grid, ensemble)
        assert rho[3, 4, 5] == pytest.approx(-ELEMENTARY_CHARGE, rel=1e-12)
        assert np.count_nonzero(rho) == 1

    def test_midpoint_splits_eight_ways(self):
        grid = grid8()
        ensemble = electrons_at([[3.5, 4.5, 5.5]])
        rho = deposit_charge(grid, ensemble)
        nonzero = rho[np.nonzero(rho)]
        assert nonzero.size == 8
        np.testing.assert_allclose(nonzero, -ELEMENTARY_CHARGE / 8.0)

    def test_periodic_wrap(self):
        grid = grid8()
        ensemble = electrons_at([[7.5, 0.0, 0.0]])
        rho = deposit_charge(grid, ensemble)
        assert rho[7, 0, 0] == pytest.approx(-ELEMENTARY_CHARGE / 2.0)
        assert rho[0, 0, 0] == pytest.approx(-ELEMENTARY_CHARGE / 2.0)

    def test_weights_scale_charge(self):
        grid = grid8()
        ensemble = electrons_at([[2.0, 2.0, 2.0]])
        ensemble.component("weight")[:] = 5.0
        rho = deposit_charge(grid, ensemble)
        assert rho[2, 2, 2] == pytest.approx(-5.0 * ELEMENTARY_CHARGE)

    def test_positions_override(self):
        grid = grid8()
        ensemble = electrons_at([[2.0, 2.0, 2.0]])
        rho = deposit_charge(grid, ensemble,
                             positions=np.array([[5.0, 5.0, 5.0]]))
        assert rho[5, 5, 5] != 0.0
        assert rho[2, 2, 2] == 0.0


class TestDirectCurrent:
    def test_total_current_matches_qv(self):
        grid = grid8()
        p = 0.1 * ELECTRON_MASS * SPEED_OF_LIGHT
        ensemble = electrons_at([[3.2, 4.7, 5.1]], [[p, 0.0, 0.0]])
        deposit_current_direct(grid, ensemble)
        v = ensemble.velocities()[0, 0]
        total_jx = grid.currents["jx"].sum() * grid.cell_volume
        assert total_jx == pytest.approx(-ELEMENTARY_CHARGE * v, rel=1e-12)
        assert grid.currents["jy"].sum() == pytest.approx(0.0, abs=1e-20)

    def test_accumulates_without_clearing(self):
        grid = grid8()
        p = 0.1 * ELECTRON_MASS * SPEED_OF_LIGHT
        ensemble = electrons_at([[3.0, 3.0, 3.0]], [[p, 0.0, 0.0]])
        deposit_current_direct(grid, ensemble)
        once = grid.currents["jx"].sum()
        deposit_current_direct(grid, ensemble)
        assert grid.currents["jx"].sum() == pytest.approx(2.0 * once)


class TestEsirkepovContinuity:
    def _continuity_residual(self, old, new, rng_seed=0):
        grid = grid8()
        ensemble = electrons_at(old)
        rho0 = deposit_charge(grid, ensemble, positions=np.asarray(old))
        ensemble.set_positions(np.asarray(new))
        rho1 = deposit_charge(grid, ensemble, positions=np.asarray(new))
        grid.clear_currents()
        deposit_current_esirkepov(grid, ensemble, np.asarray(old), dt=1.0)
        residual = (rho1 - rho0) + discrete_divergence(grid)
        scale = max(np.abs(rho1 - rho0).max(), np.abs(rho0).max(), 1e-30)
        return np.abs(residual).max() / scale

    def test_continuity_random_cloud(self, rng):
        old = rng.uniform(0.0, 8.0, (100, 3))
        new = old + rng.uniform(-0.9, 0.9, (100, 3))
        assert self._continuity_residual(old, new) < 1e-12

    def test_continuity_through_periodic_boundary(self):
        old = np.array([[7.9, 4.0, 4.0], [0.05, 2.0, 2.0]])
        new = np.array([[8.5, 4.3, 4.0], [-0.6, 2.0, 2.4]])
        assert self._continuity_residual(old, new) < 1e-12

    def test_stationary_particle_deposits_nothing(self):
        grid = grid8()
        ensemble = electrons_at([[3.3, 4.4, 5.5]])
        deposit_current_esirkepov(grid, ensemble,
                                  ensemble.positions(), dt=1.0)
        for name in ("jx", "jy", "jz"):
            assert np.all(grid.currents[name] == 0.0)

    def test_rejects_supercell_motion(self):
        grid = grid8()
        ensemble = electrons_at([[3.0, 3.0, 3.0]])
        old = np.array([[1.5, 3.0, 3.0]])
        with pytest.raises(SimulationError):
            deposit_current_esirkepov(grid, ensemble, old, dt=1.0)

    def test_rejects_bad_dt_and_shape(self):
        grid = grid8()
        ensemble = electrons_at([[3.0, 3.0, 3.0]])
        with pytest.raises(SimulationError):
            deposit_current_esirkepov(grid, ensemble,
                                      ensemble.positions(), dt=0.0)
        with pytest.raises(SimulationError):
            deposit_current_esirkepov(grid, ensemble, np.zeros((2, 3)),
                                      dt=1.0)

    def test_axis_motion_deposits_on_that_axis_only(self):
        grid = grid8()
        old = np.array([[3.2, 4.0, 5.0]])
        ensemble = electrons_at(old)
        new = old + [[0.4, 0.0, 0.0]]
        ensemble.set_positions(new)
        deposit_current_esirkepov(grid, ensemble, old, dt=1.0)
        assert np.abs(grid.currents["jx"]).max() > 0.0
        assert np.abs(grid.currents["jy"]).max() == pytest.approx(0.0,
                                                                  abs=1e-25)
        assert np.abs(grid.currents["jz"]).max() == pytest.approx(0.0,
                                                                  abs=1e-25)

    def test_mean_current_matches_charge_flux(self):
        # Total J dV = q * displacement / dt for a single particle.
        grid = grid8()
        old = np.array([[3.1, 4.2, 5.3]])
        displacement = np.array([0.3, -0.2, 0.45])
        ensemble = electrons_at(old)
        ensemble.set_positions(old + displacement)
        dt = 2.0
        deposit_current_esirkepov(grid, ensemble, old, dt=dt)
        q = -ELEMENTARY_CHARGE
        for axis, name in enumerate(("jx", "jy", "jz")):
            total = grid.currents[name].sum() * grid.cell_volume
            assert total == pytest.approx(q * displacement[axis] / dt,
                                          rel=1e-12)

    def test_continuity_with_tsc_shape(self, rng):
        from repro.fields.interpolation import Shape
        grid = grid8()
        old = rng.uniform(0.0, 8.0, (60, 3))
        new = old + rng.uniform(-0.9, 0.9, (60, 3))
        ensemble = electrons_at(old)
        rho0 = deposit_charge(grid, ensemble, positions=old,
                              shape=Shape.TSC)
        ensemble.set_positions(new)
        rho1 = deposit_charge(grid, ensemble, positions=new,
                              shape=Shape.TSC)
        grid.clear_currents()
        deposit_current_esirkepov(grid, ensemble, old, dt=1.0,
                                  shape=Shape.TSC)
        residual = (rho1 - rho0) + discrete_divergence(grid)
        scale = np.abs(rho1 - rho0).max()
        assert np.abs(residual).max() / scale < 1e-12

    def test_tsc_spreads_wider_than_cic(self):
        from repro.fields.interpolation import Shape
        grid_cic, grid_tsc = grid8(), grid8()
        # Off the cell midpoint: TSC touches 3 nodes per axis there.
        ensemble = electrons_at([[3.3, 4.3, 5.3]])
        rho_cic = deposit_charge(grid_cic, ensemble, shape=Shape.CIC)
        rho_tsc = deposit_charge(grid_tsc, ensemble, shape=Shape.TSC)
        assert np.count_nonzero(rho_tsc) > np.count_nonzero(rho_cic)
        assert rho_tsc.sum() == pytest.approx(rho_cic.sum())

    def test_ngp_esirkepov_rejected(self):
        from repro.fields.interpolation import Shape
        grid = grid8()
        ensemble = electrons_at([[3.0, 3.0, 3.0]])
        with pytest.raises(SimulationError):
            deposit_current_esirkepov(grid, ensemble,
                                      ensemble.positions(), dt=1.0,
                                      shape=Shape.NGP)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=0.2, max_value=7.8, allow_nan=False),
        st.floats(min_value=0.2, max_value=7.8, allow_nan=False),
        st.floats(min_value=0.2, max_value=7.8, allow_nan=False),
        st.floats(min_value=-0.95, max_value=0.95, allow_nan=False),
        st.floats(min_value=-0.95, max_value=0.95, allow_nan=False),
        st.floats(min_value=-0.95, max_value=0.95, allow_nan=False)),
        min_size=1, max_size=10))
    def test_continuity_property(self, moves):
        old = np.array([m[:3] for m in moves])
        new = old + np.array([m[3:] for m in moves])
        assert self._continuity_residual(old, new) < 1e-10


def _momenta_for_velocity(velocities):
    v = np.asarray(velocities, dtype=np.float64)
    speed = np.linalg.norm(v, axis=1, keepdims=True)
    gamma = 1.0 / np.sqrt(1.0 - (speed / SPEED_OF_LIGHT) ** 2)
    return ELECTRON_MASS * gamma * v


class TestDirectSchemeViolatesContinuity:
    """The paper-baseline direct deposit is *not* charge-conserving —
    the property the Esirkepov scheme exists to restore."""

    def _residuals(self, old, displacement, dt=1.0):
        old = np.asarray(old, dtype=np.float64)
        new = old + np.asarray(displacement)
        residuals = {}
        for scheme in ("esirkepov", "direct"):
            grid = grid8()
            ensemble = electrons_at(new,
                                    _momenta_for_velocity(
                                        np.asarray(displacement) / dt))
            rho0 = deposit_charge(grid, ensemble, positions=old)
            rho1 = deposit_charge(grid, ensemble, positions=new)
            grid.clear_currents()
            if scheme == "esirkepov":
                deposit_current_esirkepov(grid, ensemble, old, dt=dt)
            else:
                deposit_current_direct(grid, ensemble)
            residual = (rho1 - rho0) / dt + discrete_divergence(grid)
            residuals[scheme] = (np.abs(residual).max()
                                 / np.abs(rho0).max())
        return residuals

    def test_direct_violates_esirkepov_conserves(self, rng):
        old = rng.uniform(0.3, 7.7, (40, 3))
        displacement = rng.uniform(-0.45, 0.45, (40, 3))
        residuals = self._residuals(old, displacement)
        assert residuals["esirkepov"] < 1e-12
        assert residuals["direct"] > 1e-3

    def test_single_particle_gap_is_order_unity(self):
        residuals = self._residuals([[3.2, 4.1, 5.4]],
                                    [[0.4, -0.3, 0.2]])
        assert residuals["esirkepov"] < 1e-12
        assert residuals["direct"] > 1e-2


class TestChargeWeightCache:
    """PR 10 bugfix: the float64 ``q * w`` upcast happens once per
    ensemble, not once per deposition call."""

    def test_cached_and_read_only(self):
        ensemble = electrons_at([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        qw = charge_weight(ensemble)
        assert charge_weight(ensemble) is qw
        assert qw.dtype == ACCUMULATION_DTYPE
        assert not qw.flags.writeable
        np.testing.assert_allclose(qw, -ELEMENTARY_CHARGE)

    def test_no_per_call_upcast(self, monkeypatch):
        # Pin the bug class: repeated depositions must not re-run the
        # O(N) type-table gather + weight upcast behind charge_weight.
        ensemble = electrons_at([[2.0, 2.0, 2.0], [5.0, 5.0, 5.0]])
        calls = {"n": 0}
        original = ensemble.charges

        def counting():
            calls["n"] += 1
            return original()

        monkeypatch.setattr(ensemble, "charges", counting)
        invalidate_charge_weight(ensemble)
        grid = grid8()
        old = ensemble.positions()
        for _ in range(4):
            deposit_charge(grid, ensemble)
            deposit_current_direct(grid, ensemble)
            deposit_current_esirkepov(grid, ensemble, old, dt=1.0)
        assert calls["n"] == 1

    def test_invalidate_refreshes_after_weight_mutation(self):
        ensemble = electrons_at([[2.0, 2.0, 2.0]])
        before = charge_weight(ensemble).copy()
        ensemble.component("weight")[:] = 3.0
        invalidate_charge_weight(ensemble)
        np.testing.assert_allclose(charge_weight(ensemble), 3.0 * before)

    def test_global_invalidate(self):
        ensemble = electrons_at([[2.0, 2.0, 2.0]])
        stale = charge_weight(ensemble)
        invalidate_charge_weight()
        assert charge_weight(ensemble) is not stale

    def test_float32_weights_upcast_to_float64(self):
        from repro.fp import Precision
        from repro.particles import Layout
        pos = np.array([[1.5, 2.5, 3.5]])
        ensemble = ParticleEnsemble.from_arrays(
            pos, np.zeros((1, 3)), precision=Precision.SINGLE)
        assert ensemble.component("weight").dtype == np.float32
        assert charge_weight(ensemble).dtype == ACCUMULATION_DTYPE


class TestAccumulationContract:
    """Deposition accumulates in float64, whatever the storage
    precision — and refuses any other target."""

    def test_charge_density_is_float64(self):
        from repro.fp import Precision
        pos = np.array([[1.5, 2.5, 3.5]])
        ensemble = ParticleEnsemble.from_arrays(
            pos, np.zeros((1, 3)), precision=Precision.SINGLE)
        assert deposit_charge(grid8(), ensemble).dtype == \
            ACCUMULATION_DTYPE

    def test_float32_current_target_rejected(self):
        grid = grid8()
        grid.currents["jx"] = grid.currents["jx"].astype(np.float32)
        p = 0.1 * ELECTRON_MASS * SPEED_OF_LIGHT
        ensemble = electrons_at([[3.0, 3.0, 3.0]], [[p, 0.0, 0.0]])
        with pytest.raises(SimulationError, match="float64"):
            deposit_current_direct(grid, ensemble)
        with pytest.raises(SimulationError, match="float64"):
            deposit_current_esirkepov(
                grid, ensemble, ensemble.positions() - 0.1, dt=1.0)

    def test_single_precision_ensemble_grid_bits_match_double(self):
        # Positions/weights exactly representable in float32: the
        # float64 accumulation then makes the grid currents
        # bit-identical across storage precisions.
        from repro.fp import Precision
        pos = np.array([[3.25, 4.5, 5.75], [1.5, 2.25, 6.0]])
        vel = np.array([[0.25, 0.0, -0.5], [0.0, 0.125, 0.25]])
        outcomes = {}
        for precision in (Precision.SINGLE, Precision.DOUBLE):
            grid = grid8()
            ensemble = ParticleEnsemble.from_arrays(
                pos, _momenta_for_velocity(vel).astype(np.float32),
                precision=precision)
            old = ensemble.positions() - np.float32(0.25)
            deposit_current_esirkepov(grid, ensemble, old, dt=1.0)
            outcomes[precision] = {n: grid.currents[n].copy()
                                   for n in ("jx", "jy", "jz")}
        for name in ("jx", "jy", "jz"):
            np.testing.assert_array_equal(
                outcomes[Precision.SINGLE][name],
                outcomes[Precision.DOUBLE][name])
