"""Tests for AoS/SoA particle ensembles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import ELECTRON_MASS, SPEED_OF_LIGHT
from repro.errors import ConfigurationError, LayoutError
from repro.fp import Precision
from repro.particles import (Layout, ParticleArrayAoS, ParticleArraySoA,
                             ParticleEnsemble, make_ensemble)
from repro.particles.ensemble import COMPONENTS


class TestConstruction:
    def test_factory_dispatch(self):
        assert isinstance(make_ensemble(4, Layout.AOS), ParticleArrayAoS)
        assert isinstance(make_ensemble(4, Layout.SOA), ParticleArraySoA)

    def test_negative_size_rejected(self, layout):
        with pytest.raises(ConfigurationError):
            make_ensemble(-1, layout)

    def test_zero_size_allowed(self, layout):
        ensemble = make_ensemble(0, layout)
        assert len(ensemble) == 0

    def test_defaults(self, layout):
        ensemble = make_ensemble(5, layout)
        assert np.all(ensemble.component("weight") == 1.0)
        assert np.all(ensemble.component("gamma") == 1.0)
        assert np.all(ensemble.type_ids == 0)

    def test_bad_precision_rejected(self, layout):
        cls = ParticleArrayAoS if layout is Layout.AOS else ParticleArraySoA
        with pytest.raises(ConfigurationError):
            cls(4, precision="float")


class TestStorageFootprint:
    def test_aos_record_bytes_match_paper(self, precision):
        # Section 3: 36 bytes per particle in single, 72 in double.
        ensemble = ParticleArrayAoS(100, precision)
        assert ensemble.nbytes == 100 * precision.particle_bytes_aligned

    def test_soa_bytes(self, precision):
        ensemble = ParticleArraySoA(100, precision)
        expected = 100 * (8 * precision.itemsize + 2)
        assert ensemble.nbytes == expected

    def test_aos_component_views_are_strided(self):
        ensemble = ParticleArrayAoS(10, Precision.SINGLE)
        view = ensemble.component("px")
        assert view.strides[0] == Precision.SINGLE.particle_bytes_aligned
        assert not view.flags["C_CONTIGUOUS"]

    def test_soa_component_views_are_contiguous(self):
        ensemble = ParticleArraySoA(10, Precision.SINGLE)
        assert ensemble.component("px").flags["C_CONTIGUOUS"]

    def test_component_views_write_through(self, layout):
        ensemble = make_ensemble(3, layout)
        ensemble.component("px")[1] = 42.0
        assert ensemble.momenta()[1, 0] == 42.0

    def test_unknown_component_rejected(self, layout):
        ensemble = make_ensemble(3, layout)
        with pytest.raises(LayoutError):
            ensemble.component("vx")


class TestBulkAccessors:
    def test_set_get_positions(self, small_ensemble, rng):
        pos = rng.normal(size=(64, 3))
        small_ensemble.set_positions(pos)
        np.testing.assert_allclose(small_ensemble.positions(), pos)

    def test_set_momenta_updates_gamma(self, small_ensemble):
        mc = ELECTRON_MASS * SPEED_OF_LIGHT
        mom = np.zeros((64, 3))
        mom[:, 0] = mc
        small_ensemble.set_momenta(mom)
        np.testing.assert_allclose(small_ensemble.component("gamma"),
                                   np.sqrt(2.0), rtol=1e-12)

    def test_set_momenta_can_skip_gamma(self, small_ensemble):
        before = small_ensemble.component("gamma").copy()
        small_ensemble.set_momenta(np.zeros((64, 3)), update_gamma=False)
        np.testing.assert_array_equal(small_ensemble.component("gamma"),
                                      before)

    def test_shape_validation(self, small_ensemble):
        with pytest.raises(LayoutError):
            small_ensemble.set_positions(np.zeros((10, 3)))
        with pytest.raises(LayoutError):
            small_ensemble.set_momenta(np.zeros((64, 2)))

    def test_velocities_subluminal(self, small_ensemble):
        speeds = np.linalg.norm(small_ensemble.velocities(), axis=1)
        assert np.all(speeds < SPEED_OF_LIGHT)

    def test_kinetic_energy_nonnegative(self, small_ensemble):
        assert np.all(small_ensemble.kinetic_energies() >= 0.0)
        assert small_ensemble.total_kinetic_energy() >= 0.0

    def test_masses_charges(self, small_ensemble):
        assert np.all(small_ensemble.masses() == ELECTRON_MASS)
        assert np.all(small_ensemble.charges() < 0.0)


class TestLayoutConversion:
    def test_roundtrip_preserves_everything(self, small_ensemble):
        other_layout = (Layout.SOA if small_ensemble.layout is Layout.AOS
                        else Layout.AOS)
        converted = small_ensemble.to_layout(other_layout)
        back = converted.to_layout(small_ensemble.layout)
        for name in COMPONENTS:
            np.testing.assert_array_equal(back.component(name),
                                          small_ensemble.component(name))
        np.testing.assert_array_equal(back.type_ids,
                                      small_ensemble.type_ids)

    def test_to_same_layout_is_a_copy(self, small_ensemble):
        copy = small_ensemble.to_layout(small_ensemble.layout)
        copy.component("px")[0] = 1.0e-10
        assert small_ensemble.component("px")[0] != 1.0e-10

    def test_copy_preserves_layout_and_precision(self, layout, precision):
        ensemble = make_ensemble(4, layout, precision)
        copy = ensemble.copy()
        assert copy.layout is layout
        assert copy.precision is precision


class TestPermuteAndSelect:
    def test_permute_reverses(self, small_ensemble):
        original = small_ensemble.positions()
        small_ensemble.permute(np.arange(64)[::-1])
        np.testing.assert_allclose(small_ensemble.positions(),
                                   original[::-1])

    def test_permute_rejects_non_permutation(self, small_ensemble):
        with pytest.raises(LayoutError):
            small_ensemble.permute(np.zeros(64, dtype=np.int64))

    def test_permute_rejects_wrong_shape(self, small_ensemble):
        with pytest.raises(LayoutError):
            small_ensemble.permute(np.arange(32))

    def test_select(self, small_ensemble):
        mask = small_ensemble.component("px") > 0
        subset = small_ensemble.select(np.asarray(mask))
        assert subset.size == int(np.sum(mask))
        assert subset.layout is small_ensemble.layout
        if subset.size:
            assert np.all(subset.component("px") > 0)

    def test_select_rejects_wrong_shape(self, small_ensemble):
        with pytest.raises(LayoutError):
            small_ensemble.select(np.ones(3, dtype=bool))


class TestFromArrays:
    def test_base_class_defaults_to_soa(self):
        ensemble = ParticleEnsemble.from_arrays(
            np.zeros((3, 3)), np.zeros((3, 3)))
        assert ensemble.layout is Layout.SOA

    def test_base_class_layout_argument(self):
        ensemble = ParticleEnsemble.from_arrays(
            np.zeros((3, 3)), np.zeros((3, 3)), layout=Layout.AOS)
        assert ensemble.layout is Layout.AOS

    def test_subclass_rejects_layout_argument(self):
        with pytest.raises(LayoutError):
            ParticleArrayAoS.from_arrays(np.zeros((3, 3)), np.zeros((3, 3)),
                                         layout=Layout.SOA)

    def test_gamma_computed(self):
        mc = ELECTRON_MASS * SPEED_OF_LIGHT
        ensemble = ParticleEnsemble.from_arrays(
            [[0, 0, 0]], [[mc, 0, 0]])
        assert ensemble.component("gamma")[0] == pytest.approx(np.sqrt(2.0))

    def test_shape_validation(self):
        with pytest.raises(LayoutError):
            ParticleEnsemble.from_arrays(np.zeros((3, 2)), np.zeros((3, 2)))
        with pytest.raises(LayoutError):
            ParticleEnsemble.from_arrays(np.zeros((3, 3)), np.zeros((4, 3)))

    def test_weights_and_types(self):
        ensemble = ParticleEnsemble.from_arrays(
            np.zeros((2, 3)), np.zeros((2, 3)),
            weights=[2.0, 3.0], type_ids=[0, 2])
        assert list(ensemble.component("weight")) == [2.0, 3.0]
        assert list(ensemble.type_ids) == [0, 2]


class TestConcatenate:
    def test_joins_in_order(self, rng):
        table = None
        a = ParticleEnsemble.from_arrays(rng.normal(size=(3, 3)),
                                         np.zeros((3, 3)))
        b = ParticleEnsemble.from_arrays(rng.normal(size=(2, 3)),
                                         np.zeros((2, 3)),
                                         type_table=a.type_table)
        joined = ParticleEnsemble.concatenate([a, b])
        assert joined.size == 5
        np.testing.assert_array_equal(joined.positions()[:3],
                                      a.positions())
        np.testing.assert_array_equal(joined.positions()[3:],
                                      b.positions())

    def test_single_input_copies(self, small_ensemble):
        joined = ParticleEnsemble.concatenate([small_ensemble])
        joined.component("px")[0] = 1.0e-7
        assert small_ensemble.component("px")[0] != 1.0e-7

    def test_layout_mismatch_rejected(self):
        a = make_ensemble(2, Layout.AOS)
        b = make_ensemble(2, Layout.SOA, type_table=a.type_table)
        with pytest.raises(LayoutError):
            ParticleEnsemble.concatenate([a, b])

    def test_precision_mismatch_rejected(self):
        a = make_ensemble(2, Layout.SOA, Precision.SINGLE)
        b = make_ensemble(2, Layout.SOA, Precision.DOUBLE,
                          type_table=a.type_table)
        with pytest.raises(LayoutError):
            ParticleEnsemble.concatenate([a, b])

    def test_table_mismatch_rejected(self):
        a = make_ensemble(2, Layout.SOA)
        b = make_ensemble(2, Layout.SOA)     # fresh default table
        with pytest.raises(LayoutError):
            ParticleEnsemble.concatenate([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(LayoutError):
            ParticleEnsemble.concatenate([])


class TestIterationProtocol:
    def test_getitem_returns_proxy(self, small_ensemble):
        proxy = small_ensemble[3]
        assert proxy.index == 3

    def test_iter_counts(self, layout):
        ensemble = make_ensemble(5, layout)
        assert sum(1 for _ in ensemble) == 5


class TestConversionProperty:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_aos_soa_roundtrip_lossless(self, data):
        n = data.draw(st.integers(min_value=1, max_value=32))
        values = data.draw(st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False,
                      width=32),
            min_size=n * 3, max_size=n * 3))
        positions = np.array(values, dtype=np.float64).reshape(n, 3)
        aos = ParticleEnsemble.from_arrays(
            positions, np.zeros((n, 3)), layout=Layout.AOS)
        soa = aos.to_layout(Layout.SOA)
        back = soa.to_layout(Layout.AOS)
        np.testing.assert_array_equal(back.positions(), aos.positions())
