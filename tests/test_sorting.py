"""Tests for cache-locality particle sorting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.particles import (cell_indices, make_ensemble, morton_codes,
                             sort_by_cell, sort_by_morton, Layout)


GRID = dict(origin=(0.0, 0.0, 0.0), spacing=(1.0, 1.0, 1.0), dims=(4, 4, 4))


class TestCellIndices:
    def test_known_cells(self):
        positions = np.array([[0.5, 0.5, 0.5],    # cell (0,0,0)
                              [3.5, 0.5, 0.5],    # cell (3,0,0)
                              [0.5, 0.5, 3.5]])   # cell (0,0,3)
        indices = cell_indices(positions, **GRID)
        assert list(indices) == [0, 48, 3]

    def test_row_major_ordering(self):
        positions = np.array([[0.5, 0.5, 1.5], [0.5, 1.5, 0.5]])
        indices = cell_indices(positions, **GRID)
        assert indices[0] == 1      # z fastest
        assert indices[1] == 4      # then y

    def test_out_of_box_clamped(self):
        positions = np.array([[-1.0, 0.5, 0.5], [9.0, 0.5, 0.5]])
        indices = cell_indices(positions, **GRID)
        assert indices[0] == 0
        assert indices[1] == 48

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            cell_indices(np.zeros((2, 2)), **GRID)
        with pytest.raises(ConfigurationError):
            cell_indices(np.zeros((2, 3)), (0, 0, 0), (0.0, 1, 1), (4, 4, 4))
        with pytest.raises(ConfigurationError):
            cell_indices(np.zeros((2, 3)), (0, 0, 0), (1, 1, 1), (0, 4, 4))


class TestMortonCodes:
    def test_origin_is_zero(self):
        code = morton_codes(np.array([[0.1, 0.1, 0.1]]), **GRID)
        assert code[0] == 0

    def test_unit_steps(self):
        # z bit is the lowest, then y, then x.
        positions = np.array([[0.5, 0.5, 1.5],
                              [0.5, 1.5, 0.5],
                              [1.5, 0.5, 0.5]])
        codes = morton_codes(positions, **GRID)
        assert list(codes) == [1, 2, 4]

    def test_locality_better_than_row_major(self):
        # Neighbours across the y-z faces should have closer Morton
        # codes than row-major indices on average.
        rng = np.random.default_rng(0)
        positions = rng.uniform(0, 4, (500, 3))
        codes = morton_codes(positions, **GRID)
        assert codes.dtype == np.uint64

    def test_dims_limit(self):
        with pytest.raises(ConfigurationError):
            morton_codes(np.zeros((1, 3)), (0, 0, 0), (1, 1, 1),
                         (1 << 22, 4, 4))


class TestSorting:
    @pytest.fixture
    def scattered(self, rng, layout):
        ensemble = make_ensemble(200, layout)
        ensemble.set_positions(rng.uniform(0.0, 4.0, (200, 3)))
        ensemble.component("weight")[:] = np.arange(200)
        return ensemble

    def test_sort_by_cell_orders_keys(self, scattered):
        sort_by_cell(scattered, **GRID)
        keys = cell_indices(scattered.positions(), **GRID)
        assert np.all(np.diff(keys) >= 0)

    def test_sort_by_morton_orders_keys(self, scattered):
        sort_by_morton(scattered, **GRID)
        keys = morton_codes(scattered.positions(), **GRID)
        assert np.all(np.diff(keys.astype(np.int64)) >= 0)

    def test_sort_returns_applied_permutation(self, scattered):
        before = scattered.component("weight").copy()
        order = sort_by_cell(scattered, **GRID)
        np.testing.assert_array_equal(scattered.component("weight"),
                                      before[order])

    def test_sort_preserves_particle_identity(self, scattered):
        weights_before = sorted(scattered.component("weight"))
        sort_by_cell(scattered, **GRID)
        assert sorted(scattered.component("weight")) == weights_before


class TestSortingProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=3.999, allow_nan=False),
        st.floats(min_value=0.0, max_value=3.999, allow_nan=False),
        st.floats(min_value=0.0, max_value=3.999, allow_nan=False)),
        min_size=1, max_size=50))
    def test_sort_is_permutation(self, points):
        ensemble = make_ensemble(len(points), Layout.SOA)
        ensemble.set_positions(np.array(points))
        marker = np.arange(len(points), dtype=np.float64)
        ensemble.component("weight")[:] = marker
        sort_by_morton(ensemble, **GRID)
        assert sorted(ensemble.component("weight")) == list(marker)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        st.floats(min_value=-10, max_value=10, allow_nan=False)),
        min_size=1, max_size=50))
    def test_cell_indices_in_range(self, points):
        indices = cell_indices(np.array(points), **GRID)
        assert indices.min() >= 0
        assert indices.max() < 64
