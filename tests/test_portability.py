"""Tests for the Pennycook PP score and its committed baseline.

The drift smoke here is the same comparison CI's ``bench-regress``
job runs through the declared ``portability`` suite: recompute the
sweep at the committed baseline's parameters and fail if the PP score
moved beyond the tolerance or the device set changed.  The simulated clock is deterministic, so "within tolerance"
really means "recomputes exactly" unless a cost model changed.
"""

import json
from pathlib import Path

import pytest

from repro.backends.portability import (DEFAULT_N_PARTICLES,
                                        PORTABLE_CONFIG,
                                        DeviceEfficiency,
                                        PortabilityReport, check_drift,
                                        load_baseline,
                                        measure_portability, pp_score,
                                        write_baseline)
from repro.backends.registry import all_device_specs
from repro.errors import ConfigurationError, ValidationError

BASELINE = Path(__file__).resolve().parent.parent \
    / "benchmarks" / "BENCH_portability.json"


def _report(pp=0.9, devices=("cpu", "cuda:gpu0")):
    rows = [DeviceEfficiency(device=d, backend=d.split(":")[0]
                             if ":" in d else "oneapi",
                             best_nsps=1.0, portable_nsps=1.1,
                             efficiency=0.9) for d in devices]
    return PortabilityReport(pp=pp, devices=rows)


class TestPpScore:
    def test_harmonic_mean(self):
        assert pp_score([1.0, 1.0]) == 1.0
        assert pp_score([0.5, 1.0]) == pytest.approx(2 / 3)
        assert pp_score([0.25]) == 0.25

    def test_empty_set_is_zero(self):
        assert pp_score([]) == 0.0

    def test_unsupported_platform_zeroes_the_metric(self):
        assert pp_score([1.0, 0.0, 1.0]) == 0.0

    def test_out_of_range_efficiency_raises(self):
        with pytest.raises(ConfigurationError):
            pp_score([1.2])
        with pytest.raises(ConfigurationError):
            pp_score([-0.1])


class TestReportRoundTrip:
    def test_json_round_trip(self):
        report = _report()
        clone = PortabilityReport.from_dict(
            json.loads(json.dumps(report.as_dict())))
        assert clone.pp == report.pp
        assert [r.device for r in clone.devices] \
            == [r.device for r in report.devices]
        assert clone.portable_config == dict(PORTABLE_CONFIG)

    def test_write_and_load_baseline(self, tmp_path):
        path = write_baseline(_report(), tmp_path / "sub" / "b.json")
        loaded = load_baseline(path)
        assert loaded.pp == pytest.approx(0.9)
        # pretty-printed with a trailing newline, diff-friendly
        text = path.read_text()
        assert text.endswith("\n") and "\n " in text

    def test_corrupt_baseline_raises_typed(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValidationError, match="unreadable"):
            load_baseline(bad)
        with pytest.raises(ValidationError):
            load_baseline(tmp_path / "missing.json")


class TestDriftCheck:
    def test_identical_reports_have_no_findings(self):
        assert check_drift(_report(), _report()) == []

    def test_small_drift_within_tolerance(self):
        assert check_drift(_report(pp=0.905), _report(pp=0.9)) == []

    def test_pp_drift_is_a_finding(self):
        findings = check_drift(_report(pp=0.80), _report(pp=0.9))
        assert any("drifted" in f for f in findings)

    def test_device_set_change_is_a_finding(self):
        findings = check_drift(_report(devices=("cpu",)),
                               _report(devices=("cpu", "cuda:gpu0")))
        assert any("in baseline but not in sweep" in f
                   for f in findings)
        findings = check_drift(_report(devices=("cpu", "cuda:gpu0")),
                               _report(devices=("cpu",)))
        assert any("in sweep but not in baseline" in f
                   for f in findings)


class TestCommittedBaseline:
    def test_baseline_is_committed_and_sane(self):
        report = load_baseline(BASELINE)
        assert 0.0 < report.pp <= 1.0
        assert [row.device for row in report.devices] \
            == all_device_specs()
        assert report.portable_config == dict(PORTABLE_CONFIG)
        for row in report.devices:
            assert 0.0 < row.efficiency <= 1.0
            assert row.best_nsps > 0.0 and row.portable_nsps > 0.0

    def test_sweep_matches_committed_baseline(self):
        # the CI drift smoke, in-process: deterministic clock, so the
        # recomputed sweep must land within PP_DRIFT_TOLERANCE
        baseline = load_baseline(BASELINE)
        current = measure_portability(
            devices=[row.device for row in baseline.devices],
            n_particles=baseline.n_particles, steps=baseline.steps,
            warmup=baseline.warmup)
        assert check_drift(current, baseline) == []


class TestMeasurePortability:
    def test_defaults_are_ci_sized(self):
        assert DEFAULT_N_PARTICLES <= 50_000

    def test_empty_device_list_raises(self):
        with pytest.raises(ConfigurationError):
            measure_portability(devices=[])

    def test_rows_carry_tuning_evidence(self):
        report = measure_portability(devices=["cuda:gpu1"],
                                     n_particles=2_000, steps=3,
                                     warmup=1)
        assert len(report.devices) == 1
        row = report.devices[0]
        assert row.backend == "cuda"
        assert row.predicted_nsps is not None
        assert row.best_label


class TestPortabilityCli:
    def test_cli_check_against_committed_baseline(self, capsys):
        from repro.cli import main
        code = main(["portability", "--check-baseline", str(BASELINE)])
        assert code == 0
        out = capsys.readouterr().out
        assert "PP score" in out and "within" in out

    def test_cli_record_writes_baseline(self, tmp_path, capsys):
        from repro.cli import main
        code = main(["portability", "--portability-devices",
                     "cpu,cuda:gpu1", "--portability-particles", "2000",
                     "--steps", "3", "--record",
                     "--record-dir", str(tmp_path)])
        assert code == 0
        written = load_baseline(tmp_path / "BENCH_portability.json")
        assert [row.device for row in written.devices] \
            == ["cpu", "cuda:gpu1"]

    def test_cli_drift_exits_1(self, tmp_path, capsys):
        from repro.cli import main
        doctored = load_baseline(BASELINE)
        doctored.pp *= 0.5
        path = write_baseline(doctored, tmp_path / "drifted.json")
        with pytest.raises(SystemExit) as excinfo:
            main(["portability", "--check-baseline", str(path)])
        assert excinfo.value.code == 1
        assert "drift" in capsys.readouterr().out
