"""Tests for table formatting and the CLI."""

from repro.bench.tables import (PAPER_TABLE2, PAPER_TABLE3,
                                PAPER_FIRST_ITERATION_RATIO,
                                comparison_table, format_table)
from repro.cli import build_parser, main


class TestPaperTranscriptions:
    def test_table2_complete(self):
        assert len(PAPER_TABLE2) == 6                 # 2 layouts x 3 impls
        for row in PAPER_TABLE2.values():
            assert len(row) == 4                      # 2 scenarios x 2 prec

    def test_table2_spot_values(self):
        assert PAPER_TABLE2[("SoA", "OpenMP")][
            ("precalculated", "float")] == 0.50
        assert PAPER_TABLE2[("AoS", "DPC++")][
            ("analytical", "double")] == 1.48

    def test_table3_complete(self):
        assert len(PAPER_TABLE3) == 2
        for row in PAPER_TABLE3.values():
            assert len(row) == 6                      # 2 scenarios x 3 dev

    def test_table3_spot_values(self):
        assert PAPER_TABLE3["SoA"][("analytical", "iris-xe-max")] == 1.00
        assert PAPER_TABLE3["AoS"][("precalculated", "p630")] == 4.76

    def test_first_iteration_constant(self):
        assert PAPER_FIRST_ITERATION_RATIO == 1.5


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "long-header"],
                            [["x", 1], ["yy", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-header" in lines[1]
        assert len(lines) == 5

    def test_comparison_table_shows_both_numbers(self):
        model = {key: {k: v * 1.1 for k, v in row.items()}
                 for key, row in PAPER_TABLE3.items()}
        text = comparison_table(model, PAPER_TABLE3, "layout")
        assert "(4.76)" in text
        assert "paper" in text


class TestCli:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        for command in ("table2", "table3", "fig1", "first-iter",
                        "threads", "measure", "devices"):
            args = parser.parse_args([command] if command != "measure"
                                     else [command])
            assert args.command == command

    def test_devices_command(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "8260L" in out and "Iris" in out

    def test_first_iter_command_small(self, capsys):
        assert main(["--particles", "1000000", "first-iter"]) == 0
        assert "first iteration" in capsys.readouterr().out

    def test_threads_command_small(self, capsys):
        assert main(["--particles", "1000000", "threads"]) == 0
        out = capsys.readouterr().out
        assert "96" in out

    def test_measure_command_small(self, capsys):
        assert main(["measure", "--measure-particles", "2000",
                     "--measure-steps", "1"]) == 0
        out = capsys.readouterr().out
        assert "NSPS" in out
