"""The roofline-driven autotuner: graph classification, search, wiring.

Three layers under test:

* :func:`repro.analysis.analyze_graph` — whole-graph roofline
  classification that sees the *fused* memory traffic (dedup, RW merge,
  transient elision), reproducing the paper's compute-vs-memory-bound
  contrast per launch group rather than per recorded node;
* :func:`repro.analysis.tune` — the layout x precision x fusion x
  tiling x shard-strategy search, priced by the cost model's
  steady-state predictor and returned as a ranked ``TuningReport``;
* the facade wiring — ``RunConfig(config="auto")`` runs the predicted
  best, records predicted-vs-measured NSPS, and flags cost-model
  miscalibration as warnings plus ``autotune:mispredict`` tracer
  events without failing the run.
"""

import dataclasses

import pytest

from repro.analysis import (CALIBRATION_TOLERANCE, Candidate, analyze_graph,
                            apply_candidate, check_calibration,
                            enumerate_candidates, tune)
from repro.api import RunConfig, run_push
from repro.bench.calibration import iris_xe_max, xeon_8260l_node
from repro.cli import main
from repro.errors import ConfigurationError, GraphError
from repro.fp import Precision
from repro.observability import Tracer, tracing
from repro.oneapi.graph import KernelGraph
from repro.oneapi.runtime import build_virtual_step_graph
from repro.particles.ensemble import Layout

N = 4096
STEPS = 4


def _config(**kwargs):
    defaults = dict(n_particles=N, steps=STEPS, warmup=1,
                    scenario="precalculated")
    defaults.update(kwargs)
    return RunConfig(**defaults)


def _step_graph(scenario, n=1_000_000, field_flops=0.0):
    return build_virtual_step_graph(n, Layout.SOA, Precision.SINGLE,
                                    scenario, field_flops=field_flops)


#: A deliberately wrong device description — fantasy bandwidth,
#: interconnect and clock — for exercising the miscalibration path:
#: predictions priced against it must disagree with the (correctly
#: calibrated) measured run far beyond tolerance.
def _fantasy_device():
    return dataclasses.replace(xeon_8260l_node(), name="fantasy-cpu",
                               domain_bandwidth=600.0e9,
                               unit_bandwidth=40.0e9,
                               interconnect_bandwidth=900.0e9,
                               clock_hz=16.5e9)


class TestGraphRoofline:
    def test_paper_contrast_on_fused_cpu_graph(self):
        # The paper's Table 2/3 argument, fused-graph edition: the
        # precalculated step streams from DRAM (memory-bound), while
        # analytical field evaluation fused into the push crosses the
        # CPU ridge (compute-bound).  Both are *computed* from the
        # merged specs, not asserted per recorded node.
        device = xeon_8260l_node()
        pre = analyze_graph(_step_graph("precalculated"), device)
        ana = analyze_graph(_step_graph("analytical", field_flops=250.0),
                            device)
        assert pre.bound == "memory"
        assert ana.bound == "compute"

    def test_fusion_dedups_field_streams(self):
        # Fusing field-eval into the push turns the six staged field
        # arrays into register-carried transients: the merged spec the
        # analysis prices must not touch them at all.
        graph = _step_graph("analytical", field_flops=250.0)
        roofline = analyze_graph(graph, iris_xe_max())
        fused = [g for g in roofline.groups if g.fused]
        assert fused, "fusion pass declined to fuse the paper step"
        group = fused[0]
        assert len(group.nodes) >= 2
        elided = set(group.elided_streams)
        assert elided, "no transient streams were elided"
        spec_streams = {stream.name for stream in group.spec.streams}
        assert not (elided & spec_streams)

    def test_unfused_plan_analyses_every_node(self):
        graph = _step_graph("analytical", field_flops=250.0)
        from repro.oneapi.graph import unfused_plan
        roofline = analyze_graph(graph, iris_xe_max(),
                                 plan=unfused_plan(graph))
        assert all(not g.fused for g in roofline.groups)
        assert len(roofline.groups) == len(graph.nodes)

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            analyze_graph(KernelGraph(), xeon_8260l_node())

    def test_floor_and_nsps_are_consistent(self):
        roofline = analyze_graph(_step_graph("precalculated"),
                                 xeon_8260l_node())
        n = roofline.groups[0].n_items
        assert roofline.predicted_nsps(n) == pytest.approx(
            roofline.floor_seconds * 1.0e9 / n)


class TestSearch:
    def test_candidate_space_covers_all_axes(self):
        labels = {c.label
                  for c in enumerate_candidates(_config(device="cpu"))}
        # CPU single-device: 2 layouts x 2 precisions x 3 paths
        # x 2 SMT tilings
        assert len(labels) == 24
        assert "SoA/float/fused" in labels
        assert "AoS/double/legacy/1t" in labels

    def test_gpu_has_no_smt_axis(self):
        labels = {c.label
                  for c in enumerate_candidates(
                      _config(device="iris-xe-max"))}
        assert len(labels) == 12
        assert not any("1t" in label for label in labels)

    def test_sharded_space_includes_strategies(self):
        labels = {c.label
                  for c in enumerate_candidates(
                      _config(group="cpu, iris-xe-max"))}
        assert len(labels) == 36
        assert "SoA/float/fused/even" in labels
        assert "SoA/float/fused/bandwidth" in labels

    def test_report_is_ranked_ascending(self):
        report = tune(_config(device="iris-xe-max"))
        nsps = [p.predicted_nsps for p in report.ranked]
        assert nsps == sorted(nsps)
        assert report.best is report.ranked[0]
        assert report.worst is report.ranked[-1]
        assert report.best.predicted_nsps > 0

    def test_search_emits_tracer_instants(self):
        with tracing(Tracer()) as tracer:
            report = tune(_config(device="iris-xe-max"))
        names = [i.name for i in tracer.instants]
        assert names.count("autotune:search") == len(report.ranked)
        assert "autotune:selected" in names

    def test_apply_candidate_round_trips(self):
        config = _config()
        candidate = Candidate(layout=Layout.SOA,
                              precision=Precision.SINGLE, fusion=True,
                              threads_per_unit=1)
        config.config = "auto"
        applied = apply_candidate(config, candidate)
        assert applied.config is None
        assert applied.layout is Layout.SOA
        assert applied.fusion is True
        assert applied.threads_per_unit == 1
        assert applied.n_particles == config.n_particles

    def test_render_lists_every_candidate(self):
        report = tune(_config(device="iris-xe-max"))
        rendered = report.render()
        for prediction in report.ranked:
            assert prediction.candidate.label in rendered


class TestAutoRuns:
    def test_auto_single_run_is_calibrated(self):
        report = run_push(_config(config="auto", device="iris-xe-max"))
        assert report.tuning is not None
        assert report.predicted_nsps == \
            report.tuning.best.predicted_nsps
        assert report.calibration_warnings == []
        assert report.nsps > 0

    def test_auto_matches_manual_run_bit_exactly(self):
        auto = run_push(_config(config="auto"), validate=True)
        manual = run_push(apply_candidate(_config(),
                                          auto.tuning.best.candidate))
        assert auto.digest == manual.digest

    def test_auto_sharded_selects_a_strategy(self):
        report = run_push(_config(config="auto",
                                  group="cpu, iris-xe-max"))
        assert report.tuning.best.candidate.strategy in (
            "even", "bandwidth", "flops")
        assert report.calibration_warnings == []

    def test_report_dict_exposes_prediction(self):
        report = run_push(_config(config="auto", device="iris-xe-max"))
        as_dict = report.as_dict()
        assert as_dict["predicted_nsps"] == report.predicted_nsps
        assert as_dict["calibration_warnings"] == []

    def test_manual_run_has_no_tuning_fields(self):
        report = run_push(_config())
        assert report.tuning is None
        assert report.predicted_nsps is None
        assert "predicted_nsps" not in report.as_dict()


class TestCalibrationWarnings:
    def test_miscalibrated_device_raises_warning_and_event(self):
        # Price against a fantasy descriptor while the run executes on
        # the real calibrated device: the predicted-vs-measured gap
        # must surface as a warning plus an autotune:mispredict
        # instant — and the run itself still succeeds.  (50k particles:
        # large enough that per-item costs, not launch overheads the
        # fantasy shares with the real device, dominate the step.)
        config = _config(config="auto", device="cpu",
                         n_particles=50_000,
                         tune_device=_fantasy_device())
        with tracing(Tracer()) as tracer:
            report = run_push(config)
        assert report.calibration_warnings
        assert "mispredict" in report.calibration_warnings[0]
        assert report.nsps > 0
        names = [i.name for i in tracer.instants]
        assert "autotune:mispredict" in names
        assert "autotune:calibrated" not in names

    def test_calibrated_run_emits_calibrated_event(self):
        with tracing(Tracer()) as tracer:
            run_push(_config(config="auto", device="iris-xe-max"))
        names = [i.name for i in tracer.instants]
        assert "autotune:calibrated" in names
        assert "autotune:mispredict" not in names

    def test_check_calibration_direct(self):
        report = tune(_config(device="iris-xe-max"))
        best = report.best
        assert check_calibration(best, best.predicted_nsps, "x") == []
        off = best.predicted_nsps * (1.0 + 2 * CALIBRATION_TOLERANCE)
        warnings = check_calibration(best, off, "iris-xe-max")
        assert len(warnings) == 1
        assert best.candidate.label in warnings[0]

    def test_zero_tolerance_rejected(self):
        best = tune(_config(device="iris-xe-max")).best
        with pytest.raises(ConfigurationError):
            check_calibration(best, 1.0, "x", tolerance=0.0)


class TestConfigValidation:
    def test_unknown_config_keyword_rejected(self):
        with pytest.raises(ConfigurationError):
            run_push(_config(config="fastest"))

    def test_bad_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            run_push(_config(group="2x cpu", strategy="teapot"))

    def test_strategy_requires_sharded_mode(self):
        with pytest.raises(ConfigurationError):
            run_push(_config(strategy="even"))

    def test_threads_per_unit_requires_single_mode(self):
        with pytest.raises(ConfigurationError):
            run_push(_config(group="2x cpu", threads_per_unit=1))


class TestCli:
    def test_push_auto_runs(self, capsys):
        assert main(["push", "--auto", "--device", "iris-xe-max",
                     "--push-particles", "4096", "--steps", "4"]) == 0
        out = capsys.readouterr().out
        assert "candidate" in out
        assert "autotuned" in out

    def test_auto_plus_record_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["push", "--auto", "--record"])
