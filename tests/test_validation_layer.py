"""The validation layer: hazard detection + differential checking.

Covers the tentpole end to end: the command log the queue records, the
RAW/WAR/WAW replay over it (a deliberately dropped ``depends_on`` edge
must raise :class:`~repro.errors.HazardError`), the differential sweep
of every engine x layout x precision x fusion combination against the
scalar reference, and the ``run_push(..., validate=True)`` facade hook
— plus the satellite fixes that ride along (typed species LUTs, the
|p|-preservation property, scalar-vs-vectorized float32 agreement,
deprecation-shim kwarg forwarding, CLI exit codes, exact schedule
tiling).
"""

import dataclasses
import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench import paper_time_step, paper_wave
from repro.bench.calibration import cost_model_for, device_by_name
from repro.bench.scenarios import paper_ensemble
from repro.errors import (ConfigurationError, HazardError, SimulationError,
                          ValidationError)
from repro.fields.base import FieldValues
from repro.fp import FP3, Precision
from repro.oneapi.kernelspec import KernelSpec, MemoryStream, StreamKind
from repro.oneapi.queue import CommandRecord, Queue, RuntimeConfig
from repro.particles.ensemble import Layout, make_ensemble
from repro.validation import (ULP_TOLERANCES, assert_hazard_free,
                              check_queue, find_hazards, reference_push,
                              run_differential, ulp_distance)

DT = paper_time_step()


def _queue(in_order=False, device_name="iris-xe-max"):
    device = device_by_name(device_name)
    return Queue(device, RuntimeConfig(runtime="dpcpp", in_order=in_order),
                 cost_model_for(device))


def _spec(name, reads=(), writes=(), read_writes=()):
    streams = [MemoryStream(r, StreamKind.READ, 4.0) for r in reads]
    streams += [MemoryStream(w, StreamKind.WRITE, 4.0) for w in writes]
    streams += [MemoryStream(rw, StreamKind.READ_WRITE, 4.0)
                for rw in read_writes]
    return KernelSpec(name, streams=tuple(streams), flops_per_item=1.0)


# -- the command log ------------------------------------------------------

class TestCommandLog:
    def test_parallel_for_records_declared_access(self):
        queue = _queue()
        record = queue.parallel_for(8, _spec("push", reads=["f"],
                                             writes=["mom"],
                                             read_writes=["pos"]))
        command = queue.commands[-1]
        assert command.name == "push"
        assert command.event is record.event
        assert command.reads == frozenset({"f", "pos"})
        assert command.writes == frozenset({"mom", "pos"})
        assert command.depends_on == ()

    def test_depends_on_is_logged(self):
        queue = _queue()
        first = queue.parallel_for(8, _spec("a", writes=["x"]))
        queue.parallel_for(8, _spec("b", reads=["x"]),
                           depends_on=[first.event])
        assert queue.commands[-1].depends_on == (first.event,)

    def test_memcpy_async_logs_declared_sets(self):
        queue = _queue()
        event = queue.memcpy_async("gather", 1024, bandwidth=1e9,
                                   reads=["shard"], writes=["master"])
        command = queue.commands[-1]
        assert command.name == "gather"
        assert command.event is event
        assert command.reads == frozenset({"shard"})
        assert command.writes == frozenset({"master"})

    def test_reset_records_clears_the_log(self):
        queue = _queue()
        queue.parallel_for(8, _spec("a", writes=["x"]))
        queue.reset_records()
        assert queue.commands == []

    def test_event_seq_is_unique_per_event(self):
        queue = _queue()
        records = [queue.parallel_for(8, _spec(f"k{i}")) for i in range(5)]
        seqs = [r.event.seq for r in records]
        assert len(set(seqs)) == len(seqs)


# -- hazard detection -----------------------------------------------------

class TestHazardDetector:
    def test_dropped_edge_raises_raw(self):
        queue = _queue()
        queue.parallel_for(8, _spec("writer", writes=["a"]))
        queue.parallel_for(8, _spec("reader", reads=["a"]))  # edge dropped
        hazards = check_queue(queue)
        assert [h.kind for h in hazards] == ["RAW"]
        assert hazards[0].streams == frozenset({"a"})
        with pytest.raises(HazardError, match="RAW"):
            assert_hazard_free(queue)

    def test_ordered_pair_is_clean(self):
        queue = _queue()
        first = queue.parallel_for(8, _spec("writer", writes=["a"]))
        queue.parallel_for(8, _spec("reader", reads=["a"]),
                           depends_on=[first.event])
        assert check_queue(queue) == []
        assert assert_hazard_free(queue) == 2

    def test_war_and_waw_detected(self):
        queue = _queue()
        queue.parallel_for(8, _spec("reader", reads=["a"], writes=["b"]))
        queue.parallel_for(8, _spec("clobber", writes=["a", "b"]))
        kinds = sorted(h.kind for h in check_queue(queue))
        assert kinds == ["WAR", "WAW"]

    def test_read_modify_write_pair_yields_all_three_kinds(self):
        queue = _queue()
        queue.parallel_for(8, _spec("acc1", read_writes=["sum"]))
        queue.parallel_for(8, _spec("acc2", read_writes=["sum"]))
        kinds = sorted(h.kind for h in check_queue(queue))
        assert kinds == ["RAW", "WAR", "WAW"]

    def test_disjoint_streams_never_conflict(self):
        queue = _queue()
        queue.parallel_for(8, _spec("a", writes=["x"]))
        queue.parallel_for(8, _spec("b", writes=["y"]))
        assert check_queue(queue) == []

    def test_transitive_ordering_counts(self):
        # a -> b -> c orders (a, c) even without a direct edge.
        queue = _queue()
        a = queue.parallel_for(8, _spec("a", writes=["x"]))
        b = queue.parallel_for(8, _spec("b", reads=["x"], writes=["t"]),
                               depends_on=[a.event])
        queue.parallel_for(8, _spec("c", reads=["t"], writes=["x"]),
                           depends_on=[b.event])
        assert check_queue(queue) == []

    def test_in_order_queue_never_hazards(self):
        queue = _queue(in_order=True)
        queue.parallel_for(8, _spec("writer", writes=["a"]))
        queue.parallel_for(8, _spec("reader", reads=["a"]))
        assert check_queue(queue) == []
        assert assert_hazard_free(queue) == 2

    def test_doctored_log_with_stripped_edges_raises(self):
        # The acceptance scenario: take a correctly ordered log and
        # deliberately drop its edges — the detector must catch it.
        queue = _queue()
        first = queue.parallel_for(8, _spec("writer", writes=["a"]))
        queue.parallel_for(8, _spec("reader", reads=["a"]),
                           depends_on=[first.event])
        assert find_hazards(queue.commands) == []
        stripped = [dataclasses.replace(c, depends_on=())
                    for c in queue.commands]
        with pytest.raises(HazardError):
            assert_hazard_free(stripped, in_order=False)

    def test_foreign_dependency_events_are_ignored(self):
        # An edge pointing at another queue's event orders nothing here.
        other = _queue()
        foreign = other.parallel_for(8, _spec("elsewhere", writes=["a"]))
        queue = _queue()
        queue.parallel_for(8, _spec("writer", writes=["a"]))
        queue.parallel_for(8, _spec("reader", reads=["a"]),
                           depends_on=[foreign.event])
        assert [h.kind for h in check_queue(queue)] == ["RAW"]

    def test_hazards_reported_to_tracer_before_raise(self):
        from repro.observability import Tracer, tracing

        queue = _queue()
        queue.parallel_for(8, _spec("writer", writes=["a"]))
        queue.parallel_for(8, _spec("reader", reads=["a"]))
        tracer = Tracer()
        with tracing(tracer):
            with pytest.raises(HazardError):
                assert_hazard_free(queue)
        assert any(e.name == "hazard:RAW" for e in tracer.instants)

    def test_graph_executor_validate_passes_on_real_graphs(self):
        from repro.oneapi.graph import GraphExecutor
        from repro.oneapi.runtime import PushEngine

        for fusion in (False, True):
            ensemble = paper_ensemble(128, Layout.SOA, Precision.SINGLE)
            engine = PushEngine(_queue(), ensemble, "precalculated",
                                paper_wave(), DT, fusion=fusion)
            engine.executor = GraphExecutor(engine.queue,
                                            fusion=fusion, validate=True)
            engine.run(3)   # would raise on any unordered pair


# -- differential harness -------------------------------------------------

class TestUlpDistance:
    def test_identical_arrays_are_zero(self):
        a = np.linspace(-1.0, 1.0, 64, dtype=np.float32)
        assert ulp_distance(a, a.copy()) == 0.0

    def test_one_ulp_is_one(self):
        a = np.array([1.0], dtype=np.float64)
        b = np.nextafter(a, np.inf)
        assert ulp_distance(a, b) == pytest.approx(1.0)

    def test_near_zero_entries_judged_on_component_scale(self):
        # A denormal-sized difference next to O(1) values must not
        # explode into millions of "ULPs".
        a = np.array([1.0, 0.0], dtype=np.float32)
        b = np.array([1.0, 1e-12], dtype=np.float32)
        assert ulp_distance(a, b) < 1.0

    def test_empty_arrays(self):
        assert ulp_distance(np.zeros(0), np.zeros(0)) == 0.0


class TestDifferentialSweep:
    def test_full_small_sweep_passes(self):
        report = run_differential(n=32, steps=2)
        assert len(report.results) == 36    # 3 engines x 2 x 2 x 3 fusion
        assert report.all_passed, report.render()
        # bit-exact groups: 4 within-(layout, precision) + 2 cross-layout
        assert len(report.digest_checks) == 6
        assert "ok" in report.render()

    def test_reference_push_matches_engine_time_semantics(self):
        from repro.oneapi.runtime import PushEngine

        ensemble = paper_ensemble(24, Layout.SOA, Precision.DOUBLE)
        reference = paper_ensemble(24, Layout.SOA, Precision.DOUBLE)
        PushEngine(_queue(), ensemble, "precalculated", paper_wave(),
                   DT).run(3)
        reference_push(reference, paper_wave(), DT, 3)
        for name in ("x", "y", "z", "px", "py", "pz", "gamma"):
            assert ulp_distance(ensemble.component(name),
                                reference.component(name)) \
                <= ULP_TOLERANCES[Precision.DOUBLE]

    def test_tolerance_breach_is_flagged_not_raised(self):
        report = run_differential(n=16, steps=1,
                                  engines=("single",),
                                  layouts=(Layout.SOA,),
                                  precisions=(Precision.SINGLE,),
                                  fusion_modes=(None,),
                                  tolerances={Precision.SINGLE: 0.0})
        assert not report.all_passed
        assert any(not r.passed for r in report.results)
        assert "FAIL" in report.render()


class TestRunPushValidate:
    def test_single_mode_validates(self):
        from repro.api import RunConfig, run_push

        report = run_push(RunConfig(n_particles=192, steps=2, warmup=1),
                          validate=True)
        assert report.validation is not None
        assert report.validation.commands_checked >= 3
        assert report.validation.max_ulp \
            <= report.validation.tolerance

    def test_sharded_mode_validates_every_member_queue(self):
        from repro.api import RunConfig, run_push

        report = run_push(RunConfig(n_particles=192, steps=2, warmup=0,
                                    group="2x iris-xe-max"),
                          validate=True)
        assert report.validation is not None
        # two members, each logging pushes and exchange copies
        assert report.validation.commands_checked >= 4

    def test_resilient_mode_validates(self):
        from repro.api import RunConfig, run_push

        report = run_push(RunConfig(n_particles=192, steps=2, warmup=0,
                                    fault_plan="transient", fault_seed=1),
                          validate=True)
        assert report.validation is not None

    def test_tolerance_breach_raises_validation_error(self, monkeypatch):
        from repro.api import RunConfig, run_push
        from repro.validation import differential

        monkeypatch.setitem(differential.ULP_TOLERANCES,
                            Precision.SINGLE, 0.0)
        with pytest.raises(ValidationError, match="diverged"):
            run_push(RunConfig(n_particles=64, steps=2, warmup=0),
                     validate=True)

    def test_validate_off_by_default(self):
        from repro.api import RunConfig, run_push

        assert run_push(RunConfig(n_particles=64, steps=1,
                                  warmup=0)).validation is None


# -- physics properties (satellites) --------------------------------------

MOMENTUM = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False)
FIELD = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False)


class TestMomentumNormPreservation:
    @pytest.mark.parametrize("layout", [Layout.AOS, Layout.SOA],
                             ids=["aos", "soa"])
    @pytest.mark.parametrize("precision",
                             [Precision.SINGLE, Precision.DOUBLE],
                             ids=["float", "double"])
    @settings(max_examples=20, deadline=None)
    @given(ux=MOMENTUM, uy=MOMENTUM, uz=MOMENTUM,
           bx=FIELD, by=FIELD, bz=FIELD)
    def test_pure_magnetic_push_preserves_p_norm(self, layout, precision,
                                                 ux, uy, uz, bx, by, bz):
        from repro.constants import ELECTRON_MASS, SPEED_OF_LIGHT
        from repro.core import boris_push

        mc = ELECTRON_MASS * SPEED_OF_LIGHT
        n = 4
        ensemble = make_ensemble(n, layout, precision)
        ensemble.set_momenta(np.tile([ux * mc, uy * mc, uz * mc], (n, 1)))
        zeros = np.zeros(n, dtype=precision.dtype)

        def full(value):
            return np.full(n, value, dtype=precision.dtype)

        p2_before = sum(
            ensemble.component(c).astype(np.float64) ** 2
            for c in ("px", "py", "pz"))
        boris_push(ensemble,
                   FieldValues(zeros, zeros, zeros,
                               full(bx), full(by), full(bz)), DT)
        p2_after = sum(
            ensemble.component(c).astype(np.float64) ** 2
            for c in ("px", "py", "pz"))
        tol = 1e-5 if precision is Precision.SINGLE else 1e-12
        np.testing.assert_allclose(p2_after, p2_before,
                                   rtol=tol, atol=tol * mc * mc)


class TestScalarVectorizedAgreement:
    @pytest.mark.parametrize("layout", [Layout.AOS, Layout.SOA],
                             ids=["aos", "soa"])
    def test_float32_agreement_in_uniform_fields(self, layout):
        from repro.core import boris_push, boris_push_particle

        n, steps = 96, 3
        vectorized = paper_ensemble(n, layout, Precision.SINGLE)
        scalar = paper_ensemble(n, layout, Precision.SINGLE)
        e = FP3(100.0, -50.0, 25.0)
        b = FP3(2.0e4, -1.0e4, 5.0e3)

        def full(value):
            return np.full(n, value, dtype=np.float32)

        fields = FieldValues(full(e.x), full(e.y), full(e.z),
                             full(b.x), full(b.y), full(b.z))
        for _ in range(steps):
            boris_push(vectorized, fields, DT)
        for _ in range(steps):
            for i in range(n):
                particle = scalar[i]
                boris_push_particle(particle, e, b, DT,
                                    particle.mass, particle.charge)
        for name in ("x", "y", "z", "px", "py", "pz", "gamma"):
            assert ulp_distance(vectorized.component(name),
                                scalar.component(name)) \
                <= ULP_TOLERANCES[Precision.SINGLE], name


class TestTypedSpeciesLuts:
    def test_dtype_lookup_matches_cast_of_float64(self):
        ensemble = paper_ensemble(32, Layout.SOA, Precision.SINGLE)
        for dtype in (np.float32, np.float64):
            np.testing.assert_array_equal(
                ensemble.masses(dtype),
                ensemble.masses().astype(dtype))
            np.testing.assert_array_equal(
                ensemble.charges(dtype),
                ensemble.charges().astype(dtype))
            assert ensemble.masses(dtype).dtype == np.dtype(dtype)

    def test_typed_cache_invalidated_on_register(self):
        from repro.constants import ELECTRON_MASS, ELEMENTARY_CHARGE
        from repro.particles import ParticleSpecies, default_type_table

        table = default_type_table()
        ids = np.zeros(4, dtype=np.int16)
        table.masses_of(ids, dtype=np.float32)   # warm the typed cache
        new_id = table.register(ParticleSpecies("muon",
                                                206.768 * ELECTRON_MASS,
                                                -ELEMENTARY_CHARGE))
        muon_ids = np.full(4, new_id, dtype=np.int16)
        masses = table.masses_of(muon_ids, dtype=np.float32)
        np.testing.assert_array_equal(
            masses, np.full(4, np.float32(206.768 * ELECTRON_MASS)))

    def test_push_output_stays_in_storage_precision(self):
        # The dtype assertion in boris_push: storage-precision inputs
        # must never silently promote, and the components stay put.
        from repro.core import boris_push

        ensemble = paper_ensemble(16, Layout.SOA, Precision.SINGLE)
        n = ensemble.size
        zeros = np.zeros(n, dtype=np.float32)
        boris_push(ensemble, FieldValues(zeros, zeros, zeros,
                                         zeros, zeros, zeros), DT)
        for name in ("px", "gamma", "x"):
            assert ensemble.component(name).dtype == np.float32


# -- engine kwargs (satellite) ---------------------------------------------

class TestEngineKwargForwarding:
    def test_push_engine_takes_fusion(self):
        from repro.oneapi.runtime import PushEngine

        ensemble = paper_ensemble(64, Layout.SOA, Precision.SINGLE)
        runner = PushEngine(_queue(), ensemble, "precalculated",
                            paper_wave(), DT, fusion=True)
        assert runner.fusion is True
        assert runner.executor is not None

    def test_resilient_engine_takes_fusion(self):
        from repro.resilience import ResilientPushEngine

        ensemble = paper_ensemble(64, Layout.SOA, Precision.SINGLE)
        runner = ResilientPushEngine(ensemble, "precalculated",
                                     paper_wave(), DT, fusion=False)
        assert runner.fusion is False

    def test_sharded_engine_takes_fusion(self):
        from repro.distributed import DeviceGroup, ShardedPushEngine

        ensemble = paper_ensemble(64, Layout.SOA, Precision.SINGLE)
        runner = ShardedPushEngine(
            DeviceGroup.from_spec("2x iris-xe-max"), ensemble,
            "precalculated", paper_wave(), DT, fusion=True)
        assert runner.fusion is True

    def test_engines_do_not_warn(self):
        from repro.oneapi.runtime import PushEngine

        ensemble = paper_ensemble(64, Layout.SOA, Precision.SINGLE)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            PushEngine(_queue(), ensemble, "precalculated",
                       paper_wave(), DT)


# -- CLI exit codes (satellite) -------------------------------------------

class TestCliExitCodes:
    def test_invalid_group_spec_exits_2(self, capsys):
        from repro.cli import main

        code = main(["push", "--group", "not-a-device",
                     "--push-particles", "64", "--steps", "1"])
        assert code == 2
        assert "unknown device" in capsys.readouterr().err

    def test_unknown_group_count_exits_2(self, capsys):
        from repro.cli import main

        code = main(["shard", "--group", "0x iris-xe-max"])
        assert code == 2

    def test_record_with_fault_plan_rejected(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc_info:
            main(["push", "--record", "--fault-plan", "transient"])
        assert exc_info.value.code == 2
        assert "--record" in capsys.readouterr().err

    def test_record_with_fault_plan_rejected_on_tables(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc_info:
            main(["table2", "--record", "--fault-plan", "chaos"])
        assert exc_info.value.code == 2

    def test_push_validate_flag_runs(self, capsys):
        from repro.cli import main

        code = main(["push", "--push-particles", "64", "--steps", "1",
                     "--warmup", "0", "--validate"])
        assert code == 0
        assert "hazard-free" in capsys.readouterr().out


# -- schedule tiling (satellite) ------------------------------------------

class TestScheduleExactTiling:
    def _topology(self):
        from repro.oneapi import ThreadTopology
        from tests.test_oneapi_device import make_device
        return ThreadTopology(make_device())

    def test_overlapping_chunks_rejected(self):
        from repro.oneapi import Chunk, Schedule

        with pytest.raises(ConfigurationError, match="overlap"):
            Schedule([Chunk(0, 6, 0), Chunk(4, 10, 1)], self._topology(),
                     10, dynamic=False)

    def test_gap_rejected(self):
        from repro.oneapi import Chunk, Schedule

        with pytest.raises(ConfigurationError):
            Schedule([Chunk(0, 4, 0), Chunk(6, 10, 1)], self._topology(),
                     10, dynamic=False)

    def test_exact_tiling_accepted(self):
        from repro.oneapi import Chunk, Schedule

        schedule = Schedule([Chunk(0, 4, 0), Chunk(4, 10, 1)],
                            self._topology(), 10, dynamic=False)
        assert schedule.n_items == 10
