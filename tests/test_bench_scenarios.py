"""Tests for the benchmark scenario definitions and metrics."""

import math

import numpy as np
import pytest

from repro.bench import (measure_real_nsps, nsps_from_records,
                         paper_time_step, paper_wave, runtime_config_for,
                         BenchmarkCase, PAPER_PARTICLES,
                         PAPER_STEPS_PER_ITERATION, PAPER_ITERATIONS)
from repro.bench.scenarios import paper_ensemble
from repro.errors import ConfigurationError
from repro.fields import MDipoleWave
from repro.fp import Precision
from repro.particles import Layout


class TestPaperConstants:
    def test_experiment_sizes(self):
        # Section 5.2: 1e7 particles, 1e3 steps per iteration, 10
        # iterations.
        assert PAPER_PARTICLES == 10_000_000
        assert PAPER_STEPS_PER_ITERATION == 1_000
        assert PAPER_ITERATIONS == 10

    def test_wave_is_paper_configuration(self):
        wave = paper_wave()
        assert isinstance(wave, MDipoleWave)
        assert wave.omega == pytest.approx(2.1e15)

    def test_time_step_fraction(self):
        dt = paper_time_step(0.01)
        period = 2.0 * math.pi / 2.1e15
        assert dt == pytest.approx(period / 100.0)
        with pytest.raises(ConfigurationError):
            paper_time_step(0.0)

    def test_paper_ensemble_scaled(self):
        ensemble = paper_ensemble(128, Layout.AOS, Precision.SINGLE)
        assert ensemble.size == 128
        assert ensemble.layout is Layout.AOS
        assert ensemble.precision is Precision.SINGLE


class TestBenchmarkCase:
    def test_label(self):
        case = BenchmarkCase("analytical", Layout.SOA, Precision.SINGLE,
                             "OpenMP")
        assert "SoA" in case.label and "Analytical" in case.label

    def test_rejects_unknown_scenario(self):
        with pytest.raises(ConfigurationError):
            BenchmarkCase("poisson", Layout.SOA, Precision.SINGLE,
                          "OpenMP")


class TestRuntimeConfigFor:
    def test_openmp(self):
        config = runtime_config_for("OpenMP")
        assert config.runtime == "openmp"

    def test_dpcpp_plain(self):
        config = runtime_config_for("DPC++")
        assert config.runtime == "dpcpp"
        assert config.cpu_places == ""

    def test_dpcpp_numa(self):
        config = runtime_config_for("DPC++ NUMA")
        assert config.cpu_places == "numa_domains"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            runtime_config_for("CUDA")

    def test_core_restriction_passed_through(self):
        config = runtime_config_for("OpenMP", units=4, threads_per_unit=1)
        assert config.units == 4
        assert config.threads_per_unit == 1


class TestMetrics:
    def test_nsps_from_records_skips_warmup(self):
        class FakeRecord:
            def __init__(self, value):
                self._value = value

            def nsps(self):
                return self._value

        records = [FakeRecord(100.0), FakeRecord(50.0),
                   FakeRecord(1.0), FakeRecord(1.0)]
        assert nsps_from_records(records) == pytest.approx(1.0)

    def test_nsps_from_records_requires_records(self):
        with pytest.raises(ConfigurationError):
            nsps_from_records([])

    def test_measure_real_nsps_runs(self):
        ensemble = paper_ensemble(2000, Layout.SOA, Precision.DOUBLE)
        result = measure_real_nsps(ensemble, "analytical", paper_wave(),
                                   paper_time_step(), steps=2,
                                   warmup_steps=1)
        assert result.nsps > 0.0
        assert result.n_particles == 2000
        assert result.steps == 2

    def test_measure_real_nsps_moves_particles(self):
        ensemble = paper_ensemble(500, Layout.AOS, Precision.DOUBLE)
        before = ensemble.positions().copy()
        measure_real_nsps(ensemble, "precalculated", paper_wave(),
                          paper_time_step(), steps=2, warmup_steps=1)
        assert not np.allclose(ensemble.positions(), before)

    def test_measure_validates_inputs(self):
        ensemble = paper_ensemble(10)
        with pytest.raises(ConfigurationError):
            measure_real_nsps(ensemble, "magic", paper_wave(), 1e-17)
        with pytest.raises(ConfigurationError):
            measure_real_nsps(ensemble, "analytical", paper_wave(), 1e-17,
                              steps=0)
