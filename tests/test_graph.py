"""Kernel-graph fusion and the persistent JIT program cache.

Covers the tentpole layers end to end: fusion legality rules (layout /
precision / barrier / item-count), spec merging with transient-stream
elision, cost-model-driven planning, cold-vs-warm program-cache
accounting (including the on-disk persistence round trip and cache
sharing across a device group's shards), and the bit-exactness bar —
fused, unfused and legacy execution must produce byte-identical
particle state.
"""

import numpy as np
import pytest

from repro.bench import paper_time_step, paper_wave
from repro.bench.calibration import cost_model_for, device_by_name
from repro.bench.scenarios import paper_ensemble
from repro.core.stepping import state_digest
from repro.errors import ConfigurationError, GraphError
from repro.fp import Precision
from repro.oneapi.graph import (FusionPass, GraphExecutor, KernelGraph,
                                KernelNode, fuse_nodes, fusion_legal)
from repro.oneapi.kernelspec import KernelSpec, MemoryStream, StreamKind
from repro.oneapi.programcache import ProgramCache, ProgramKey
from repro.oneapi.queue import Queue, RuntimeConfig
from repro.oneapi.runtime import PushEngine
from repro.particles.ensemble import Layout


def _spec(name, streams, flops=10.0):
    return KernelSpec(name=name, streams=tuple(streams),
                      flops_per_item=flops)


def _stream(name, kind, nbytes=4.0, span=None, contiguous=True):
    return MemoryStream(name=name, kind=kind, bytes_per_item=nbytes,
                        span_bytes_per_item=span if span is not None
                        else nbytes, contiguous=contiguous)


def _node(name, *, reads=(), writes=(), n_items=1000, layout="SoA",
          precision=Precision.SINGLE, **kwargs):
    streams = [_stream(r, StreamKind.READ) for r in reads]
    streams += [_stream(w, StreamKind.WRITE) for w in writes]
    return KernelNode(spec=_spec(name, streams), n_items=n_items,
                      layout=layout, precision=precision, **kwargs)


def _queue(device_name="iris-xe-max", **kwargs):
    device = device_by_name(device_name)
    return Queue(device, RuntimeConfig(runtime="dpcpp"),
                 cost_model_for(device), **kwargs)


# -- legality -------------------------------------------------------------

class TestFusionLegality:
    def test_compatible_nodes_fuse(self):
        a = _node("a", reads=["x"], writes=["t"])
        b = _node("b", reads=["t"], writes=["y"])
        ok, reason = fusion_legal(a, b)
        assert ok and reason == ""

    def test_layout_mismatch_refused(self):
        ok, reason = fusion_legal(_node("a", layout="AoS"),
                                  _node("b", layout="SoA"))
        assert not ok and "layout" in reason

    def test_unknown_layout_never_fuses(self):
        # "" means layout-agnostic; fusion must not be assumed legal
        ok, reason = fusion_legal(_node("a", layout=""),
                                  _node("b", layout=""))
        assert not ok and "layout" in reason

    def test_precision_mismatch_refused(self):
        ok, reason = fusion_legal(
            _node("a", precision=Precision.SINGLE),
            _node("b", precision=Precision.DOUBLE))
        assert not ok and "precision" in reason

    def test_barrier_kernel_refused_both_sides(self):
        dep = _node("deposit", barrier=True)
        push = _node("push")
        for pair in ((dep, push), (push, dep)):
            ok, reason = fusion_legal(*pair)
            assert not ok and "barrier" in reason

    def test_non_elementwise_refused(self):
        ok, reason = fusion_legal(_node("sort", elementwise=False),
                                  _node("push"))
        assert not ok and "elementwise" in reason

    def test_item_count_mismatch_refused(self):
        ok, reason = fusion_legal(_node("a", n_items=100),
                                  _node("b", n_items=200))
        assert not ok and "item counts" in reason


class TestNodeValidation:
    def test_negative_items_rejected(self):
        with pytest.raises(GraphError):
            _node("bad", n_items=-1)

    def test_barrier_with_transient_rejected(self):
        with pytest.raises(GraphError):
            _node("bad", writes=["t"], barrier=True,
                  transient=frozenset(["t"]))

    def test_unknown_transient_rejected(self):
        with pytest.raises(GraphError):
            _node("bad", writes=["t"], transient=frozenset(["nope"]))


# -- spec merging ---------------------------------------------------------

class TestFuseNodes:
    def test_transient_intermediate_elided(self):
        a = _node("eval", reads=["pos"], writes=["fields"],
                  transient=frozenset(["fields"]))
        b = _node("push", reads=["fields", "pos"], writes=["mom"])
        spec, elided = fuse_nodes([a, b])
        assert elided == ("fields",)
        names = {s.name for s in spec.streams}
        assert names == {"pos", "mom"}
        assert spec.name == "fused:eval+push"
        assert spec.flops_per_item == pytest.approx(20.0)

    def test_unconsumed_transient_kept(self):
        # nothing downstream reads it, so it still reaches memory
        a = _node("eval", writes=["fields"],
                  transient=frozenset(["fields"]))
        b = _node("diag", reads=["pos"], writes=["energy"])
        spec, elided = fuse_nodes([a, b])
        assert elided == ()
        assert {s.name for s in spec.streams} == \
            {"fields", "pos", "energy"}

    def test_read_plus_write_becomes_read_write(self):
        a = _node("a", reads=["mom"])
        b = _node("b", writes=["mom"])
        spec, _ = fuse_nodes([a, b])
        (stream,) = spec.streams
        assert stream.kind is StreamKind.READ_WRITE

    def test_shared_read_deduplicated(self):
        a = _node("a", reads=["pos"])
        b = _node("b", reads=["pos"])
        spec, _ = fuse_nodes([a, b])
        assert len(spec.streams) == 1
        assert spec.streams[0].kind is StreamKind.READ

    def test_conflicting_stream_shapes_rejected(self):
        a = KernelNode(spec=_spec("a", [_stream("pos", StreamKind.READ,
                                                nbytes=4.0)]),
                       n_items=10, layout="SoA")
        b = KernelNode(spec=_spec("b", [_stream("pos", StreamKind.READ,
                                                nbytes=8.0)]),
                       n_items=10, layout="SoA")
        with pytest.raises(GraphError, match="declared differently"):
            fuse_nodes([a, b])

    def test_empty_group_rejected(self):
        with pytest.raises(GraphError):
            fuse_nodes([])

    def test_mixed_item_counts_rejected(self):
        with pytest.raises(GraphError):
            fuse_nodes([_node("a", n_items=10), _node("b", n_items=20)])


# -- planning -------------------------------------------------------------

class TestFusionPass:
    def _pass(self):
        return FusionPass(cost_model_for(device_by_name("iris-xe-max")))

    def test_chain_fuses_into_one_group(self):
        graph = KernelGraph()
        graph.add(_node("eval", reads=["pos"], writes=["f"],
                        transient=frozenset(["f"])))
        graph.add(_node("push", reads=["f", "pos"], writes=["mom"]))
        graph.add(_node("diag", reads=["mom"], writes=["energy"]))
        plan = self._pass().plan(graph)
        assert plan.groups == [[0, 1, 2]]
        assert plan.fused_group_count == 1
        assert plan.kernels_eliminated == 2
        assert plan.refusals == {}

    def test_barrier_cuts_the_chain(self):
        graph = KernelGraph()
        graph.add(_node("push", reads=["pos"], writes=["mom"]))
        graph.add(_node("deposit", reads=["mom"], writes=["current"],
                        barrier=True))
        graph.add(_node("diag", reads=["mom"], writes=["energy"]))
        plan = self._pass().plan(graph)
        assert plan.groups == [[0], [1], [2]]
        assert ("push", "deposit") in plan.refusals
        assert "barrier" in plan.refusals[("push", "deposit")]

    def test_layout_mismatch_recorded_as_refusal(self):
        graph = KernelGraph()
        graph.add(_node("a", layout="AoS"))
        graph.add(_node("b", layout="SoA"))
        plan = self._pass().plan(graph)
        assert plan.groups == [[0], [1]]
        assert "layout" in plan.refusals[("a", "b")]

    def test_negative_margin_rejected(self):
        with pytest.raises(GraphError):
            FusionPass(cost_model_for(device_by_name("cpu")), margin=-0.1)


# -- program cache --------------------------------------------------------

class TestProgramCache:
    KEY = ProgramKey(chain=("push",), device="gpu", layout="SoA",
                     precision="float")

    def test_cold_build_charges_jit_once(self):
        cache = ProgramCache()
        assert not cache.is_warm(self.KEY)
        assert cache.build(self.KEY, 0.3) == pytest.approx(0.3)
        assert cache.is_warm(self.KEY)
        assert cache.build(self.KEY, 0.3) == 0.0
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.jit_seconds_charged == pytest.approx(0.3)

    def test_clear_is_per_device(self):
        cache = ProgramCache()
        other = ProgramKey(chain=("push",), device="cpu", layout="SoA",
                           precision="float")
        cache.build(self.KEY, 0.3)
        cache.build(other, 0.1)
        assert cache.clear(device="gpu") == 1
        assert not cache.is_warm(self.KEY)
        assert cache.is_warm(other)

    def test_persistence_round_trip(self, tmp_path):
        path = tmp_path / "programs.json"
        warm = ProgramCache(persist_path=str(path))
        warm.build(self.KEY, 0.3)
        reloaded = ProgramCache(persist_path=str(path))
        assert reloaded.is_warm(self.KEY)
        assert reloaded.build(self.KEY, 0.3) == 0.0
        assert reloaded.stats.persisted_hits == 1
        assert reloaded.stats.jit_seconds_charged == 0.0

    def test_corrupt_persist_file_falls_back_cold(self, tmp_path):
        path = tmp_path / "programs.json"
        path.write_text("{not json")
        cache = ProgramCache(persist_path=str(path))
        assert not cache.is_warm(self.KEY)
        # The cold rebuild is charged and rewrites the file whole...
        assert cache.build(self.KEY, 0.3) == 0.3
        # ...so the next process loads it warm again.
        reloaded = ProgramCache(persist_path=str(path))
        assert reloaded.is_warm(self.KEY)

    def test_truncated_persist_file_falls_back_cold(self, tmp_path):
        path = tmp_path / "programs.json"
        warm = ProgramCache(persist_path=str(path))
        warm.build(self.KEY, 0.3)
        full = path.read_text()
        path.write_text(full[:len(full) // 2])  # torn write
        cache = ProgramCache(persist_path=str(path))
        assert not cache.is_warm(self.KEY)
        assert cache.build(self.KEY, 0.3) == 0.3

    def test_corrupt_persist_file_reported_to_tracer(self, tmp_path):
        from repro.observability import Tracer, tracing

        path = tmp_path / "programs.json"
        path.write_text('{"version": 1, "programs": [{"chain": []}]}')
        tracer = Tracer()
        with tracing(tracer):
            ProgramCache(persist_path=str(path))
        names = [e.name for e in tracer.instants]
        assert "program-cache:corrupt" in names

    def test_reset_warmup_clears_only_own_device(self):
        cache = ProgramCache()
        gpu_queue = _queue("iris-xe-max", program_cache=cache)
        cpu_key = ProgramKey(chain=("x",), device="some-other-model",
                             precision="float")
        cache.build(cpu_key, 0.2)
        key = ProgramKey(chain=("y",), device=gpu_queue.device.jit_key,
                         precision="float")
        cache.build(key, 0.3)
        gpu_queue.reset_warmup()
        assert cache.is_warm(cpu_key)
        assert not cache.is_warm(key)


class TestCacheSharingAcrossShards:
    def test_homogeneous_pair_compiles_once(self):
        from repro.distributed import DeviceGroup
        from repro.distributed.runner import ShardedPushEngine

        ensemble = paper_ensemble(8192, Layout.SOA, Precision.SINGLE)
        group = DeviceGroup.from_spec("2x iris-xe-max")
        engine = ShardedPushEngine(group, ensemble, "precalculated",
                                   paper_wave(), paper_time_step(),
                                   fusion=True)
        engine.run(3)
        # two shards, one device *model*: the second shard reuses the
        # first shard's compiled program (SYCL's per-context cache)
        assert group.program_cache.stats.misses == 1
        assert group.program_cache.stats.hits >= 1

    def test_heterogeneous_group_compiles_per_model(self):
        from repro.distributed import DeviceGroup
        from repro.distributed.runner import ShardedPushEngine

        ensemble = paper_ensemble(8192, Layout.SOA, Precision.SINGLE)
        group = DeviceGroup.from_spec("cpu, iris-xe-max")
        engine = ShardedPushEngine(group, ensemble, "precalculated",
                                   paper_wave(), paper_time_step(),
                                   fusion=True)
        engine.run(3)
        # CPU runs the openmp-free dpcpp runtime too? each *model*
        # compiles its own binary — exactly two misses
        assert group.program_cache.stats.misses == 2


# -- execution: bit-exactness and the fusion win --------------------------

def _engine(fusion, n=4096, scenario="precalculated", diagnostics=False,
            queue=None):
    ensemble = paper_ensemble(n, Layout.SOA, Precision.SINGLE)
    queue = queue if queue is not None else _queue()
    return PushEngine(queue, ensemble, scenario, paper_wave(),
                      paper_time_step(), fusion=fusion,
                      diagnostics=diagnostics)


class TestGraphExecution:
    @pytest.mark.parametrize("scenario", ["precalculated", "analytical"])
    def test_fused_unfused_legacy_bit_identical(self, scenario):
        digests = {}
        for mode in (None, False, True):
            engine = _engine(mode, scenario=scenario)
            engine.run(5)
            digests[mode] = state_digest(engine.ensemble)
        assert digests[True] == digests[False] == digests[None]

    def test_unfused_launches_every_node(self):
        engine = _engine(False, diagnostics=True)
        records = [engine.step() for _ in range(2)]
        assert len(engine.queue.records) == 6   # 3 nodes x 2 steps
        assert records[-1] is engine.queue.records[-1]

    def test_fused_collapses_to_one_launch_per_step(self):
        engine = _engine(True, diagnostics=True)
        engine.run(2)
        assert len(engine.queue.records) == 2
        assert engine.executor.last_plan.kernels_eliminated == 2

    def test_fused_warm_step_not_slower(self):
        fused = _engine(True)
        unfused = _engine(False)
        fused.run(5)
        unfused.run(5)
        # steady state: warm-cache fused steps must beat the unfused
        # graph (fewer launches, deduped particle streams, elided
        # field staging arrays)
        assert fused.step_seconds[-1] <= unfused.step_seconds[-1]

    def test_cold_step_pays_jit_once(self):
        engine = _engine(True)
        engine.run(4)
        jit = engine.queue.device.jit_compile_seconds
        assert engine.step_seconds[0] > engine.step_seconds[-1] + jit / 2
        assert engine.queue.program_cache.stats.misses == 1

    def test_diagnostics_output_is_gamma_minus_one(self):
        engine = _engine(True, diagnostics=True)
        engine.run(3)
        gamma = engine.ensemble.component("gamma")
        np.testing.assert_array_equal(engine.diag_energy,
                                      gamma - gamma.dtype.type(1.0))

    def test_empty_graph_is_noop(self):
        executor = GraphExecutor(_queue())
        assert executor.run(KernelGraph()) == []
