"""Tests for physical constants and unit helpers."""

import pytest

from repro import constants


class TestValues:
    def test_speed_of_light_cgs(self):
        assert constants.SPEED_OF_LIGHT == pytest.approx(2.99792458e10)

    def test_electron_mass_positive(self):
        assert constants.ELECTRON_MASS > 0.0

    def test_proton_to_electron_mass_ratio(self):
        ratio = constants.PROTON_MASS / constants.ELECTRON_MASS
        assert ratio == pytest.approx(1836.15, rel=1e-4)

    def test_petawatt_in_cgs(self):
        assert constants.PETAWATT == pytest.approx(1.0e22)

    def test_electron_volt_in_erg(self):
        assert constants.ELECTRON_VOLT == pytest.approx(1.602176634e-12)


class TestWavelengthFrequency:
    def test_paper_wavelength_matches_frequency(self):
        # The paper: omega = 2.1e15 1/s corresponds to lambda = 0.9 um.
        omega = constants.wavelength_to_frequency(0.9 * constants.MICRON)
        assert omega == pytest.approx(2.1e15, rel=0.005)

    def test_roundtrip(self):
        wavelength = 0.8e-4
        omega = constants.wavelength_to_frequency(wavelength)
        assert constants.frequency_to_wavelength(omega) == \
            pytest.approx(wavelength)

    def test_rejects_nonpositive_wavelength(self):
        with pytest.raises(ValueError):
            constants.wavelength_to_frequency(0.0)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            constants.frequency_to_wavelength(-1.0)


class TestRelativisticFieldAmplitude:
    def test_dimensional_value(self):
        # E_rel = m c omega / e for the paper's frequency ~ 1.2e8.
        value = constants.relativistic_field_amplitude(2.1e15)
        expected = (constants.ELECTRON_MASS * constants.SPEED_OF_LIGHT
                    * 2.1e15 / constants.ELEMENTARY_CHARGE)
        assert value == pytest.approx(expected)
        assert value == pytest.approx(1.19e8, rel=0.01)

    def test_scales_linearly_with_omega(self):
        one = constants.relativistic_field_amplitude(1.0e15)
        two = constants.relativistic_field_amplitude(2.0e15)
        assert two == pytest.approx(2.0 * one)

    def test_rejects_zero_charge(self):
        with pytest.raises(ValueError):
            constants.relativistic_field_amplitude(1e15, charge=0.0)

    def test_rejects_bad_mass(self):
        with pytest.raises(ValueError):
            constants.relativistic_field_amplitude(1e15, mass=-1.0)


class TestCyclotronFrequency:
    def test_classical_value(self):
        b = 1.0e4
        omega = constants.cyclotron_frequency(b)
        expected = constants.ELEMENTARY_CHARGE * b / (
            constants.ELECTRON_MASS * constants.SPEED_OF_LIGHT)
        assert omega == pytest.approx(expected)

    def test_gamma_slows_rotation(self):
        slow = constants.cyclotron_frequency(1e4, gamma=2.0)
        fast = constants.cyclotron_frequency(1e4, gamma=1.0)
        assert slow == pytest.approx(fast / 2.0)

    def test_rejects_gamma_below_one(self):
        with pytest.raises(ValueError):
            constants.cyclotron_frequency(1e4, gamma=0.5)

    def test_sign_insensitive(self):
        assert constants.cyclotron_frequency(-1e4) == \
            constants.cyclotron_frequency(1e4)
