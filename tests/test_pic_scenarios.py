"""Tests for the validated PIC scenarios (repro.pic.scenarios)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fp import Precision
from repro.particles import Layout
from repro.pic import (EnergyHistory, SCENARIOS, build_scenario,
                       get_scenario, pic_state_digest, scenario_names)

NAMES = ("laser-slab", "magnetic-mirror", "relativistic-beam")


class TestRegistry:
    def test_three_scenarios_registered(self):
        assert tuple(scenario_names()) == NAMES

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            get_scenario("tokamak")
        with pytest.raises(ConfigurationError):
            build_scenario("tokamak")

    def test_registry_entries_carry_tolerances(self):
        for name in NAMES:
            scenario = SCENARIOS[name]
            assert scenario.name == name
            assert scenario.energy_tolerance > 0.0
            assert scenario.default_particles > 0


class TestDeterminism:
    @pytest.mark.parametrize("name", NAMES)
    def test_same_seed_same_bits(self, name):
        digests = set()
        for _ in range(2):
            simulation = build_scenario(name, n_particles=48, seed=21)
            simulation.run(2)
            digests.add(pic_state_digest(simulation))
        assert len(digests) == 1

    def test_different_seed_different_state(self):
        digests = set()
        for seed in (1, 2):
            simulation = build_scenario("laser-slab", n_particles=48,
                                        seed=seed)
            digests.add(pic_state_digest(simulation))
        assert len(digests) == 2

    def test_layouts_build_identical_physics(self):
        digests = set()
        for layout in (Layout.AOS, Layout.SOA):
            simulation = build_scenario("magnetic-mirror", n_particles=48,
                                        seed=3, layout=layout)
            simulation.run(2)
            digests.add(pic_state_digest(simulation))
        assert len(digests) == 1


class TestConservation:
    @pytest.mark.parametrize("name", NAMES)
    def test_energy_drift_within_declared_tolerance(self, name):
        scenario = get_scenario(name)
        simulation = scenario.build(n_particles=256, seed=0)
        history = EnergyHistory()
        simulation.run(scenario.default_steps, energy_history=history)
        drift = history.relative_drift()
        assert np.isfinite(drift)
        assert drift <= scenario.energy_tolerance, \
            f"{name}: energy drift {drift:.3e} exceeds " \
            f"{scenario.energy_tolerance:.1e}"

    @pytest.mark.parametrize("name", NAMES)
    def test_divergence_b_free_over_a_long_run(self, name):
        # The Yee update conserves the discrete div B exactly; over a
        # long run it may drift only by accumulated round-off.
        simulation = build_scenario(name, n_particles=64, seed=0)
        solver = simulation.solver
        b_scale = max(np.abs(simulation.grid.fields[c]).max()
                      for c in ("bx", "by", "bz")) or 1.0
        dx = min(simulation.grid.spacing)
        before = np.abs(solver.divergence_b()).max()
        simulation.run(24)
        after = np.abs(solver.divergence_b()).max()
        budget = 1e-10 * b_scale / dx
        assert after - before <= budget, \
            f"{name}: div B grew {after - before:.3e} (budget {budget:.3e})"

    def test_single_precision_scenarios_still_build(self):
        simulation = build_scenario("laser-slab", n_particles=32,
                                    precision=Precision.SINGLE)
        simulation.run(1)
        assert simulation.step_count == 1


class TestPicDifferentialSweep:
    def test_one_scenario_sweep_is_bit_exact(self):
        from repro.validation import run_pic_differential
        report = run_pic_differential(n=32, steps=2,
                                      scenarios=("relativistic-beam",))
        assert report.all_passed
        labels = {r.fusion for r in report.results}
        assert labels == {"reference", "legacy", "unfused", "fused"}
        # 2 layouts x (per-combination group + 1 cross-layout check)
        assert len(report.digest_checks) == 3
        assert all(c.passed for c in report.digest_checks)
        engine_cells = [r for r in report.results
                        if r.fusion != "reference"]
        assert all(r.commands_checked > 0 for r in engine_cells)

    def test_render_names_every_mode(self):
        from repro.validation import run_pic_differential
        text = run_pic_differential(
            n=16, steps=1, scenarios=("magnetic-mirror",),
            layouts=(Layout.SOA,)).render()
        for token in ("pic[magnetic-mirror]", "legacy", "unfused",
                      "fused", "bit-exact group"):
            assert token in text
