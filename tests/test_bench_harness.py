"""Tests: the modelled experiments reproduce the paper's *claims*.

These tests run the harness at the paper's particle count (virtual
allocations, so this is cheap in memory) and assert the qualitative
findings of Section 5 — orderings and approximate ratios — rather than
exact NSPS values.
"""

import pytest

from repro.bench import (fig1_series, first_iteration_ratio, model_push_nsps,
                         thread_sweep, PAPER_TABLE2, PAPER_TABLE3)
from repro.bench.scenarios import BenchmarkCase
from repro.errors import ConfigurationError
from repro.fp import Precision
from repro.particles import Layout

N = 4_000_000     # large enough to leave every cache, cheaper than 1e7


def nsps(parallelization, layout=Layout.SOA, precision=Precision.SINGLE,
         scenario="precalculated", **kwargs):
    case = BenchmarkCase(scenario, layout, precision, parallelization)
    return model_push_nsps(case, n=N, **kwargs).nsps


class TestTable2Claims:
    def test_numa_policy_is_a_significant_gain(self):
        # Finding 1: NUMA-friendly policy gives a significant gain.
        plain = nsps("DPC++")
        numa = nsps("DPC++ NUMA")
        assert plain / numa > 1.2

    def test_dpcpp_numa_close_to_openmp(self):
        # Finding 2: optimized DPC++ only slightly inferior (~10%).
        openmp = nsps("OpenMP")
        numa = nsps("DPC++ NUMA")
        assert 1.0 < numa / openmp < 1.3

    def test_layout_has_small_effect_on_cpu(self):
        # Finding 3: AoS vs SoA almost no effect on CPU.
        aos = nsps("OpenMP", layout=Layout.AOS)
        soa = nsps("OpenMP", layout=Layout.SOA)
        assert 0.7 < aos / soa < 1.4

    def test_double_about_twice_single_precalculated(self):
        # Finding 4: double ~2x single in the precalculated problem.
        single = nsps("OpenMP", precision=Precision.SINGLE)
        double = nsps("OpenMP", precision=Precision.DOUBLE)
        assert 1.7 < double / single < 2.3

    def test_analytical_double_faster_than_precalculated_double(self):
        # Finding 5: with double precision the analytical scenario is
        # a little faster.
        precalc = nsps("OpenMP", precision=Precision.DOUBLE,
                       scenario="precalculated")
        analytical = nsps("OpenMP", precision=Precision.DOUBLE,
                          scenario="analytical")
        assert analytical < precalc

    def test_all_cells_within_factor_two_of_paper(self):
        for (layout_name, parallelization), row in PAPER_TABLE2.items():
            layout = Layout.AOS if layout_name == "AoS" else Layout.SOA
            for (scenario, precision_name), paper_value in row.items():
                precision = (Precision.SINGLE if precision_name == "float"
                             else Precision.DOUBLE)
                model = nsps(parallelization, layout, precision, scenario)
                assert 0.5 < model / paper_value < 2.0, \
                    f"{layout_name}/{parallelization}/{scenario}/" \
                    f"{precision_name}: model {model:.2f} vs paper " \
                    f"{paper_value:.2f}"


class TestTable3Claims:
    def test_layout_matters_on_gpus(self):
        # "on Intel GPUs the run time may differ by more than half".
        for device in ("p630", "iris-xe-max"):
            aos = nsps(device, layout=Layout.AOS)
            soa = nsps(device, layout=Layout.SOA)
            assert aos / soa > 1.4

    def test_p630_slower_than_cpu_by_3_to_6(self):
        # "the code on P630 works slower only by a factor of 3.5-4.5".
        cpu = nsps("DPC++ NUMA", layout=Layout.SOA)
        gpu = nsps("p630", layout=Layout.SOA)
        assert 3.0 < gpu / cpu < 6.5

    def test_iris_slower_than_cpu_by_under_3(self):
        # "the code on Iris Xe Max is slower by a factor of 1.7-2.6".
        cpu = nsps("DPC++ NUMA", layout=Layout.SOA)
        gpu = nsps("iris-xe-max", layout=Layout.SOA)
        assert 1.5 < gpu / cpu < 3.5

    def test_iris_faster_than_p630(self):
        assert nsps("iris-xe-max") < nsps("p630")

    def test_all_cells_within_factor_two_of_paper(self):
        for layout_name, row in PAPER_TABLE3.items():
            layout = Layout.AOS if layout_name == "AoS" else Layout.SOA
            for (scenario, device), paper_value in row.items():
                parallelization = ("DPC++ NUMA" if device == "cpu"
                                   else device)
                model = nsps(parallelization, layout, Precision.SINGLE,
                             scenario)
                assert 0.5 < model / paper_value < 2.0, \
                    f"{layout_name}/{device}/{scenario}: model " \
                    f"{model:.2f} vs paper {paper_value:.2f}"


class TestFig1Claims:
    @pytest.fixture(scope="class")
    def series(self):
        return fig1_series(core_counts=(1, 2, 4, 8, 16, 24, 32, 48), n=N)

    def test_openmp_near_linear_at_low_counts(self, series):
        points = dict(series["OpenMP/SoA"])
        assert points[2] == pytest.approx(2.0, rel=0.15)
        assert points[4] == pytest.approx(4.0, rel=0.15)

    def test_dpcpp_superlinear_at_low_counts(self, series):
        # "For DPC++ NUMA implementations, super-linear acceleration is
        # observed at the beginning."
        points = dict(series["DPC++ NUMA/SoA"])
        assert points[2] > 2.0
        assert points[4] > 4.0

    def test_saturation_within_first_socket(self, series):
        # Speedup flattens once the socket's bandwidth is saturated.
        points = dict(series["OpenMP/SoA"])
        assert points[24] < 24 * 0.75

    def test_second_socket_resumes_scaling(self, series):
        points = dict(series["OpenMP/SoA"])
        assert points[48] > 1.5 * points[24]

    def test_efficiency_near_paper_63_percent(self, series):
        # "approaching to 63% of strong scaling efficiency ... 48 cores".
        points = dict(series["DPC++ NUMA/SoA"])
        efficiency = points[48] / 48.0
        assert 0.5 < efficiency < 0.85


class TestInTextEffects:
    def test_first_iteration_about_fifty_percent_slower(self):
        ratio = first_iteration_ratio(n=N)
        assert 1.25 < ratio < 1.8

    def test_hyperthreading_helps(self):
        sweep = thread_sweep(n=N)
        assert sweep[96] < sweep[48]

    def test_model_requires_warmup_steps(self):
        case = BenchmarkCase("precalculated", Layout.SOA, Precision.SINGLE,
                             "OpenMP")
        with pytest.raises(ConfigurationError):
            model_push_nsps(case, n=N, steps=2)

    def test_gpu_case_routes_to_gpu_device(self):
        case = BenchmarkCase("precalculated", Layout.SOA, Precision.SINGLE,
                             "p630")
        result = model_push_nsps(case, n=N)
        assert result.bound == "memory"
        assert result.nsps > nsps("DPC++ NUMA")
