"""Tests for the observability layer: tracer, exporters, NSPS guard."""

import json

import pytest

from repro.bench.harness import model_push_nsps
from repro.bench.scenarios import BenchmarkCase
from repro.errors import TraceError
from repro.fp import Precision
from repro.observability import (Tracer, active_tracer, chrome_trace_events,
                                 format_kernel_summary, install_tracer,
                                 kernel_summary, to_chrome_trace, trace_span,
                                 tracing, write_chrome_trace)
from repro.observability.counters import KernelStats
from repro.observability.summary import steady_nsps
from repro.particles import Layout

pytestmark = pytest.mark.trace

#: The Table 2 cell used throughout: the paper's best CPU configuration.
NUMA_CASE = BenchmarkCase("precalculated", Layout.SOA, Precision.SINGLE,
                          "DPC++ NUMA")
SMALL_N = 20_000


class TestSpanNesting:
    def test_begin_end_depth_and_parent(self):
        tracer = Tracer()
        outer = tracer.begin_span("outer", "host")
        inner = tracer.begin_span("inner", "host")
        assert outer.depth == 0 and inner.depth == 1
        assert inner.parent == "outer"
        assert tracer.open_depth == 2
        tracer.end_span(inner)
        tracer.end_span(outer)
        assert tracer.open_depth == 0
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        assert all(s.end >= s.start for s in tracer.spans)

    def test_context_manager_nesting_and_scope(self):
        tracer = Tracer()
        with tracer.span("a", "host"):
            assert tracer.current_scope == "a"
            with tracer.span("b", "host", flavour="nested"):
                assert tracer.current_scope == "b"
            assert tracer.current_scope == "a"
        assert tracer.current_scope == ""   # "" at top level
        b = next(s for s in tracer.spans if s.name == "b")
        assert b.args["flavour"] == "nested"

    def test_unbalanced_end_raises(self):
        tracer = Tracer()
        with pytest.raises(TraceError):
            tracer.end_span()
        outer = tracer.begin_span("outer", "host")
        tracer.begin_span("inner", "host")
        with pytest.raises(TraceError):
            tracer.end_span(outer)   # inner is still open

    def test_sim_slice_rejects_negative_duration(self):
        tracer = Tracer()
        with pytest.raises(TraceError):
            tracer.sim_slice("k", 2.0, 1.0, "track")

    def test_trace_span_is_noop_without_tracer(self):
        assert active_tracer() is None
        with trace_span("nothing", "host") as span:
            assert span is None

    def test_tracing_installs_and_restores(self):
        tracer = Tracer()
        with tracing(tracer) as active:
            assert active is tracer
            assert active_tracer() is tracer
        assert active_tracer() is None

    def test_install_tracer_returns_previous(self):
        tracer = Tracer()
        assert install_tracer(tracer) is None
        try:
            assert install_tracer(None) is tracer
        finally:
            install_tracer(None)


def traced_small_cell():
    """Run the small NUMA benchmark cell under a fresh tracer."""
    tracer = Tracer()
    with tracing(tracer):
        result = model_push_nsps(NUMA_CASE, n=SMALL_N, steps=6)
    return tracer, result


#: Required fields per Chrome trace_event phase, per the spec
#: (Trace Event Format document; "s" is the instant-scope field).
REQUIRED_FIELDS = {
    "X": {"name", "cat", "ph", "ts", "dur", "pid", "tid"},
    "i": {"name", "ph", "ts", "pid", "tid", "s"},
    "C": {"name", "ph", "ts", "pid"},
    "M": {"name", "ph", "pid"},
}


class TestChromeExport:
    def test_events_match_trace_event_schema(self):
        tracer, _ = traced_small_cell()
        events = chrome_trace_events(tracer)
        assert events, "expected a non-empty event stream"
        phases = {e["ph"] for e in events}
        assert {"X", "M"} <= phases
        for event in events:
            ph = event["ph"]
            assert ph in REQUIRED_FIELDS, f"unexpected phase {ph!r}"
            missing = REQUIRED_FIELDS[ph] - set(event)
            assert not missing, f"{ph} event missing {missing}"
            if ph in ("X", "i", "C"):
                assert isinstance(event["ts"], (int, float))
                assert event["ts"] >= 0.0
            if ph == "X":
                assert event["dur"] >= 0.0
            if ph == "i":
                assert event["s"] in ("g", "p", "t")
            if ph == "M":
                assert event["name"] in ("process_name", "thread_name")
                assert "name" in event["args"]

    def test_document_shape_and_serializability(self):
        tracer, _ = traced_small_cell()
        doc = to_chrome_trace(tracer)
        assert set(doc) >= {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        assert "kernels" in doc["otherData"]
        json.dumps(doc)   # must be pure-JSON serializable

    def test_write_chrome_trace_round_trips(self, tmp_path):
        tracer, _ = traced_small_cell()
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_sim_slices_live_on_their_own_process(self):
        tracer, _ = traced_small_cell()
        events = chrome_trace_events(tracer)
        sim = [e for e in events if e["ph"] == "X" and e["pid"] == 1]
        host = [e for e in events if e["ph"] == "X" and e["pid"] == 0]
        assert len(sim) == 6        # one slice per modelled launch
        assert host                 # cell + kernel spans
        # the cost breakdown rides on the slice args
        assert {"bound", "jit_seconds", "cold_pages"} <= set(sim[0]["args"])


class TestNspsGuard:
    def test_traced_equals_untraced_exactly(self):
        untraced = model_push_nsps(NUMA_CASE, n=SMALL_N, steps=6)
        tracer, traced = traced_small_cell()
        assert traced.nsps == untraced.nsps
        assert traced.first_launch_nsps == untraced.first_launch_nsps
        assert traced.bound == untraced.bound

    def test_summary_reproduces_harness_nsps(self):
        tracer, result = traced_small_cell()
        rows = kernel_summary(tracer)
        assert len(rows) == 1
        row = rows[0]
        assert row["kernel"] == "boris-precalculated-SoA-float"
        assert row["scope"].startswith("cell:SoA/DPC++ NUMA")
        assert row["launches"] == 6
        assert abs(row["steady_nsps"] - result.nsps) < 1.0e-9
        assert abs(row["first_nsps"] - result.first_launch_nsps) < 1.0e-9

    def test_steady_nsps_skips_warmup_like_metrics(self):
        stats = KernelStats(name="k", scope="s")
        durations = [10.0e-6, 5.0e-6, 1.0e-6, 1.0e-6, 1.0e-6]
        for total in durations:

            class FakeTiming:
                total_seconds = total
                memory_seconds = total
                compute_seconds = 0.0
                scheduling_seconds = 0.0
                jit_seconds = 0.0
                cold_page_seconds = 0.0
                transfer_seconds = 0.0
                bytes_moved = 0.0
                remote_bytes = 0.0
                cold_pages = 0
                bound = "memory"

            stats.add_launch(1000, FakeTiming())
        # skip the first two launches, average the steady tail
        assert steady_nsps(stats.samples) == pytest.approx(1.0, abs=1e-12)
        # fewer launches than the warm-up window: average everything
        assert steady_nsps(stats.samples[:2]) == pytest.approx(7.5)

    def test_summary_table_formats(self):
        tracer, _ = traced_small_cell()
        text = format_kernel_summary(tracer)
        assert "steady NSPS" in text
        assert "boris-precalculated-SoA-float" in text


class TestRetryAccounting:
    """Recovery cost shows up on the simulated clock, and tracing
    still observes without perturbing (the PR-1 guard, now under
    fault injection)."""

    def _queue_and_spec(self, n=4096):
        from repro.bench.calibration import cost_model_for, device_by_name
        from repro.oneapi.queue import Queue, RuntimeConfig
        from repro.oneapi.runtime import build_virtual_push_spec
        device = device_by_name("cpu")
        queue = Queue(device, RuntimeConfig(runtime="dpcpp"),
                      cost_model_for(device))
        spec = build_virtual_push_spec(n, Layout.SOA, Precision.SINGLE,
                                       "precalculated", queue.memory)
        return queue, spec, n

    def test_two_failures_add_exactly_the_backoff_delays(self):
        from repro.resilience import (FaultPlan, FaultRule, RetryPolicy,
                                      fault_injection, launch_with_retry)
        plan = FaultPlan(name="fail-twice", rules=(
            FaultRule("launch-failure", at_ops=(0, 1)),))
        policy = RetryPolicy(seed=3)
        queue, spec, n = self._queue_and_spec()
        with fault_injection(plan, seed=0) as injector:
            record = launch_with_retry(queue, n, spec, policy=policy)
        assert [f.kind for f in injector.injected] == ["launch-failure"] * 2
        delays = policy.delay_sequence()
        expected = [next(delays), next(delays)]
        backoffs = [e for e in queue.timeline.events
                    if e.name == f"backoff:{spec.name}"]
        assert [e.duration for e in backoffs] == expected
        # ... and the penalty is folded into the surviving record, so
        # NSPS computed from records reflects the retries.
        assert record.timing.recovery_seconds == pytest.approx(
            sum(expected))
        clean_queue, clean_spec, _ = self._queue_and_spec()
        clean = clean_queue.parallel_for(n, clean_spec,
                                         precision=Precision.DOUBLE)
        assert record.timing.total_seconds == pytest.approx(
            clean.timing.total_seconds + sum(expected))

    def test_watchdog_burns_its_timeout_on_the_timeline(self):
        from repro.resilience import (FaultPlan, FaultRule, RetryPolicy,
                                      Watchdog, fault_injection,
                                      launch_with_retry)
        plan = FaultPlan(name="hang-once", rules=(
            FaultRule("launch-hang", at_ops=(0,)),))
        watchdog = Watchdog(timeout_seconds=0.25)
        queue, spec, n = self._queue_and_spec()
        with fault_injection(plan, seed=0):
            launch_with_retry(queue, n, spec, policy=RetryPolicy(),
                              watchdog=watchdog)
        burned = [e for e in queue.timeline.events
                  if e.name == f"watchdog:{spec.name}"]
        assert [e.duration for e in burned] == [0.25]

    def test_traced_nsps_equals_untraced_under_injection(self):
        # Same plan + seed => identical faults, so tracing must still
        # be a pure observer even while the injector is firing.
        from repro.resilience import fault_injection, named_plan

        def run():
            with fault_injection(named_plan("transient"), seed=11):
                return model_push_nsps(NUMA_CASE, n=SMALL_N, steps=6)

        untraced = run()
        tracer = Tracer()
        with tracing(tracer):
            traced = run()
        assert traced.nsps == untraced.nsps
        assert traced.first_launch_nsps == untraced.first_launch_nsps

    def test_fault_and_recovery_events_are_traced(self):
        from repro.resilience import (FaultPlan, FaultRule, RetryPolicy,
                                      fault_injection, launch_with_retry)
        plan = FaultPlan(name="fail-once", rules=(
            FaultRule("launch-failure", at_ops=(0,)),))
        queue, spec, n = self._queue_and_spec()
        tracer = Tracer()
        with tracing(tracer):
            with fault_injection(plan, seed=0):
                launch_with_retry(queue, n, spec, policy=RetryPolicy())
        names = [i.name for i in tracer.instants]
        assert "fault:launch-failure" in names
        assert "recovery:retry" in names
