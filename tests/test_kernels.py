"""Tests for the fused push kernels (scenario semantics)."""

import numpy as np

from repro.core import advance, BORIS_FLOPS, GAMMA_FLOPS, POSITION_FLOPS
from repro.core.kernels import (boris_push_analytical,
                                boris_push_precalculated)
from repro.fields import MDipoleWave, PrecalculatedField
from repro.particles.initializers import paper_benchmark_ensemble


class TestScenarioEquivalence:
    def test_precalculated_equals_analytical_for_one_step(self, layout):
        """The paper's two scenarios compute identical physics when the
        precalculated array is refreshed at the particles' positions."""
        wave = MDipoleWave()
        a = paper_benchmark_ensemble(64, layout=layout, seed=1)
        b = a.copy()
        dt = 1e-16
        t = 0.2e-15

        precalc = PrecalculatedField.from_source(wave, a, t)
        boris_push_precalculated(a, precalc, dt)
        boris_push_analytical(b, wave, t, dt)

        np.testing.assert_array_equal(a.momenta(), b.momenta())
        np.testing.assert_array_equal(a.positions(), b.positions())

    def test_multi_step_with_refresh(self):
        wave = MDipoleWave()
        a = paper_benchmark_ensemble(32, seed=2)
        b = a.copy()
        dt = 1e-16
        precalc = PrecalculatedField(a.size, a.precision, a.layout)
        time = 0.0
        for _ in range(5):
            precalc.refresh(wave, a, time)
            boris_push_precalculated(a, precalc, dt)
            boris_push_analytical(b, wave, time, dt)
            time += dt
        np.testing.assert_allclose(a.positions(), b.positions(), rtol=1e-14)

    def test_analytical_matches_advance_driver(self):
        wave = MDipoleWave()
        a = paper_benchmark_ensemble(32, seed=3)
        b = a.copy()
        dt = 1e-16
        time = 0.0
        for _ in range(3):
            boris_push_analytical(a, wave, time, dt)
            time += dt
        advance(b, wave, dt, 3)
        np.testing.assert_array_equal(a.positions(), b.positions())


class TestFlopConstants:
    def test_positive_and_plausible(self):
        assert BORIS_FLOPS > 50
        assert GAMMA_FLOPS > 5
        assert POSITION_FLOPS > 5
        total = BORIS_FLOPS + 2 * GAMMA_FLOPS + POSITION_FLOPS
        assert 100 < total < 300
