"""Tests for SYCL-style events and queue ordering semantics."""

import pytest

from repro.errors import DeviceError
from repro.oneapi import (KernelSpec, MemoryStream, Queue, RuntimeConfig,
                          SimEvent, StreamKind, Timeline)
from tests.test_oneapi_device import make_device


def spec(name="k"):
    return KernelSpec(name=name, streams=(
        MemoryStream(name="s", kind=StreamKind.READ, bytes_per_item=8),),
        flops_per_item=10)


class TestSimEvent:
    def test_duration(self):
        event = SimEvent("a", 1.0, 3.5)
        assert event.duration == 2.5

    def test_rejects_negative_duration(self):
        with pytest.raises(DeviceError):
            SimEvent("bad", 2.0, 1.0)


class TestTimeline:
    def test_in_order_serializes(self):
        timeline = Timeline(in_order=True)
        first = timeline.schedule("a", 1.0)
        second = timeline.schedule("b", 2.0)
        assert first.end == 1.0
        assert second.start == 1.0
        assert timeline.makespan == 3.0

    def test_out_of_order_overlaps_independent_commands(self):
        timeline = Timeline(in_order=False)
        timeline.schedule("a", 1.0)
        timeline.schedule("b", 2.0)
        assert timeline.makespan == 2.0          # both start at t = 0

    def test_dependencies_order_out_of_order_commands(self):
        timeline = Timeline(in_order=False)
        first = timeline.schedule("a", 1.0)
        second = timeline.schedule("b", 2.0, depends_on=[first])
        assert second.start == 1.0
        assert timeline.makespan == 3.0

    def test_diamond_dependency(self):
        timeline = Timeline(in_order=False)
        root = timeline.schedule("root", 1.0)
        left = timeline.schedule("left", 2.0, depends_on=[root])
        right = timeline.schedule("right", 3.0, depends_on=[root])
        join = timeline.schedule("join", 1.0, depends_on=[left, right])
        assert join.start == 4.0                 # after the longer arm
        assert timeline.makespan == 5.0

    def test_in_order_ignores_looser_dependencies(self):
        timeline = Timeline(in_order=True)
        first = timeline.schedule("a", 5.0)
        second = timeline.schedule("b", 1.0, depends_on=[])
        assert second.start == first.end

    def test_reset(self):
        timeline = Timeline()
        timeline.schedule("a", 1.0)
        timeline.reset()
        assert timeline.makespan == 0.0
        assert timeline.events == []

    def test_rejects_negative_duration(self):
        with pytest.raises(DeviceError):
            Timeline().schedule("a", -1.0)


class TestQueueOrdering:
    def test_records_carry_events(self):
        queue = Queue(make_device())
        record = queue.parallel_for(1000, spec())
        assert record.event is not None
        assert record.event.duration == pytest.approx(
            record.simulated_seconds)

    def test_default_queue_is_in_order(self):
        queue = Queue(make_device())
        a = queue.parallel_for(1000, spec(name="a"))
        b = queue.parallel_for(1000, spec(name="b"))
        assert b.event.start == pytest.approx(a.event.end)

    def test_out_of_order_queue_overlaps(self):
        queue = Queue(make_device(), RuntimeConfig(in_order=False))
        a = queue.parallel_for(1000, spec(name="a"))
        b = queue.parallel_for(1000, spec(name="b"))
        assert b.event.start == 0.0
        assert queue.timeline.makespan < \
            a.simulated_seconds + b.simulated_seconds

    def test_depends_on_orders_out_of_order_launches(self):
        queue = Queue(make_device(), RuntimeConfig(in_order=False))
        a = queue.parallel_for(1000, spec(name="a"))
        b = queue.parallel_for(1000, spec(name="b"),
                               depends_on=[a.event])
        assert b.event.start == pytest.approx(a.event.end)

    def test_reset_records_clears_timeline(self):
        queue = Queue(make_device())
        queue.parallel_for(1000, spec())
        queue.reset_records()
        assert queue.timeline.makespan == 0.0
