"""Tests for the Yee-grid FDTD Maxwell solver."""

import math

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.errors import SimulationError
from repro.fields import UniformField, YeeGrid
from repro.pic import FdtdSolver, max_stable_dt


def vacuum_grid(cells=32, spacing=1.0e-5):
    return YeeGrid((0.0, 0.0, 0.0), (spacing, spacing, spacing),
                   (cells, 4, 4))


class TestCfl:
    def test_limit_formula(self):
        dt = max_stable_dt((1.0, 1.0, 1.0), safety=1.0)
        assert dt == pytest.approx(1.0 / (SPEED_OF_LIGHT * math.sqrt(3.0)))

    def test_anisotropic_spacing(self):
        fine = max_stable_dt((0.5, 1.0, 1.0), safety=1.0)
        coarse = max_stable_dt((1.0, 1.0, 1.0), safety=1.0)
        assert fine < coarse

    def test_solver_rejects_unstable_dt(self):
        grid = vacuum_grid()
        limit = max_stable_dt(grid.spacing, safety=1.0)
        with pytest.raises(SimulationError):
            FdtdSolver(grid, 1.01 * limit)

    def test_solver_rejects_nonpositive_dt(self):
        with pytest.raises(SimulationError):
            FdtdSolver(vacuum_grid(), 0.0)

    def test_safety_validation(self):
        with pytest.raises(SimulationError):
            max_stable_dt((1.0, 1.0, 1.0), safety=0.0)


class TestVacuumEvolution:
    def _standing_mode(self, grid):
        """Seed the lowest standing E_y mode along x."""
        nx = grid.dims[0]
        k = 2.0 * math.pi / (nx * grid.spacing[0])
        x_ey = grid.component_coordinates("ey", 0)
        grid.component("ey")[:] = np.cos(k * x_ey)[:, None, None]
        return k

    def test_uniform_field_is_static(self):
        grid = vacuum_grid()
        grid.fill_from_source(UniformField(e=(1.0, 2.0, 3.0),
                                           b=(4.0, 5.0, 6.0)), 0.0)
        solver = FdtdSolver(grid, max_stable_dt(grid.spacing, 0.5))
        solver.run(20)
        assert np.allclose(grid.component("ex"), 1.0)
        assert np.allclose(grid.component("bz"), 6.0)

    def test_standing_mode_oscillates_at_ck(self):
        grid = vacuum_grid(cells=64)
        k = self._standing_mode(grid)
        omega = SPEED_OF_LIGHT * k
        period = 2.0 * math.pi / omega
        steps = 400
        solver = FdtdSolver(grid, period / steps)
        amplitude0 = grid.component("ey").max()
        solver.run(steps)
        # After one period the mode returns to its initial state.
        assert grid.component("ey").max() == pytest.approx(amplitude0,
                                                           rel=5e-3)

    def test_energy_conserved(self):
        grid = vacuum_grid(cells=32)
        self._standing_mode(grid)
        solver = FdtdSolver(grid, max_stable_dt(grid.spacing, 0.9))
        # Energy at integer steps sloshes between E and B; compare over
        # whole periods using the time-averaged bound instead.
        energies = []
        for _ in range(200):
            solver.step()
            energies.append(grid.field_energy())
        mean = np.mean(energies)
        assert np.max(energies) / mean < 1.05
        assert np.min(energies) / mean > 0.95

    def test_divergence_b_stays_zero(self):
        grid = vacuum_grid()
        self._standing_mode(grid)
        solver = FdtdSolver(grid, max_stable_dt(grid.spacing, 0.9))
        solver.run(100)
        scale = np.abs(grid.component("bz")).max() / grid.spacing[0] + 1e-30
        assert np.abs(solver.divergence_b()).max() < 1e-10 * scale

    def test_run_validates_steps(self):
        solver = FdtdSolver(vacuum_grid(), 1e-17)
        with pytest.raises(SimulationError):
            solver.run(-1)

    def test_time_advances(self):
        solver = FdtdSolver(vacuum_grid(), 1e-17)
        solver.run(5)
        assert solver.time == pytest.approx(5e-17)


class TestCurrentDrive:
    def test_uniform_current_drives_e_linearly(self):
        # dE/dt = -4 pi J for uniform J (curl-free).
        grid = vacuum_grid()
        j0 = 1.0e8
        grid.currents["jx"][:] = j0
        dt = max_stable_dt(grid.spacing, 0.5)
        solver = FdtdSolver(grid, dt)
        solver.run(10)
        expected = -4.0 * math.pi * j0 * 10 * dt
        assert np.allclose(grid.component("ex"), expected, rtol=1e-12)
        assert np.allclose(grid.component("ey"), 0.0)
