"""Push-as-a-service: scheduler, admission, failover and accounting.

The acceptance bar (ISSUE 7): a schedule of >= 8 concurrent jobs with
injected device loss and launch timeouts completes with every job's
state digest bit-exact versus the same ``RunConfig`` run solo and
fault-free; overload answers with a typed
:class:`~repro.errors.JobRejectedError` rather than a crash; and every
:class:`~repro.service.JobReport` accounts retries, queue wait and
recovery on the simulated clock.  This module pins all of that, plus
the admission/eviction/preemption/deadline/budget semantics documented
in ``docs/SERVICE.md``.
"""

import json

import pytest

from repro.api import RunConfig, run_push
from repro.errors import (ConfigurationError, DeviceLostError,
                          JobDeadlineError, JobPreemptedError,
                          JobRejectedError)
from repro.observability import Tracer, tracing
from repro.resilience.faults import FaultPlan, FaultRule
from repro.service import (DEFAULT_FLEET, JobQueue, JobSpec, JobState,
                           PushService, ServiceReport)

#: A deterministic launch-timeout plan: the 4th kernel launch hangs
#: once; the retry machinery must absorb it (watchdog + backoff).
HANG_PLAN = FaultPlan("hang-once", rules=(
    FaultRule("launch-hang", at_ops=(3,), max_injections=1),))

_SOLO_DIGESTS = {}


def small_config(**overrides):
    """A service-sized workload: big enough to shard, small enough to
    keep the suite fast."""
    base = dict(n_particles=500, steps=4, warmup=1)
    base.update(overrides)
    return RunConfig(**base)


def solo_digest(config: RunConfig) -> str:
    """Digest of the same config run solo and fault-free (memoised)."""
    key = (config.n_particles, config.steps, config.warmup,
           config.scenario, str(config.layout), str(config.precision),
           config.group, config.device)
    if key not in _SOLO_DIGESTS:
        solo = RunConfig(n_particles=config.n_particles,
                         steps=config.steps, warmup=config.warmup,
                         scenario=config.scenario, layout=config.layout,
                         precision=config.precision, group=config.group,
                         device=config.device or "iris-xe-max")
        _SOLO_DIGESTS[key] = run_push(solo).digest
    return _SOLO_DIGESTS[key]


# -- the acceptance schedule (module-scoped: many tests read it) -----------

@pytest.fixture(scope="module")
def acceptance() -> ServiceReport:
    """Eight concurrent jobs, three tenants, mixed priorities, with one
    injected device loss and one injected launch hang."""
    service = PushService(fleet=DEFAULT_FLEET, checkpoint_every=2)
    tenants = ("alice", "bob", "carol")
    for i in range(8):
        fault = None
        if i == 1:
            fault = "device-loss"
        elif i == 3:
            fault = HANG_PLAN
        service.submit(JobSpec(
            f"job-{i}",
            small_config(n_particles=400 + 100 * (i % 2)),
            tenant=tenants[i % 3], priority=i % 3, fault_plan=fault))
    return service.run()


def test_acceptance_all_jobs_complete(acceptance):
    assert len(acceptance.jobs) == 8
    assert acceptance.completed == 8
    assert acceptance.failed == 0 and acceptance.rejected == 0
    assert acceptance.all_completed
    assert acceptance.makespan > 0.0


def test_acceptance_digests_bit_exact(acceptance):
    # THE acceptance bar: recovery, retries and preemption must never
    # change physics — every digest equals the solo fault-free run's.
    for report in acceptance.jobs.values():
        assert report.digest == solo_digest(
            small_config(n_particles=400 + 100 * (int(
                report.name.split("-")[1]) % 2)))


def test_acceptance_device_loss_survived(acceptance):
    victim = acceptance.jobs["job-1"]
    assert victim.completed
    assert victim.fault_counts.get("device-loss", 0) >= 1
    assert len(victim.devices_lost) == 1
    assert victim.restores >= 1
    assert len(victim.devices) == 2          # relaunched elsewhere
    assert victim.checkpoints_saved >= 1
    # The dead card shows up in the fleet ledger too.
    dead = [n for n in acceptance.nodes if not n["alive"]]
    assert [n["name"] for n in dead] == list(victim.devices_lost)


def test_acceptance_launch_hang_absorbed(acceptance):
    hung = acceptance.jobs["job-3"]
    assert hung.completed
    assert hung.fault_counts.get("launch-hang", 0) == 1
    assert hung.retries >= 1
    assert hung.watchdog_seconds > 0.0
    assert hung.backoff_seconds > 0.0


def test_acceptance_accounting_consistent(acceptance):
    for report in acceptance.jobs.values():
        assert report.state == JobState.COMPLETED
        assert report.steps == 5             # warmup 1 + steps 4
        assert report.nsps > 0.0
        assert report.device_seconds > 0.0
        assert report.queue_wait_seconds >= 0.0
        assert report.launched is not None
        assert report.finished is not None
        assert report.finished <= acceptance.makespan + 1e-12
        events = [e.event for e in report.events]
        assert events[0] == "admit"
        assert "launch" in events
        assert events[-1] == "complete"
        clocks = [e.clock for e in report.events]
        assert clocks == sorted(clocks)


def test_acceptance_jit_amortized(acceptance):
    # 8 jobs share one (layout, precision) profile: the fleet-shared
    # ProgramCache means the whole schedule JIT-compiles at most once
    # per device model it touched, not once per job.
    assert acceptance.cache_stats["misses"] <= len(
        {n["key"] for n in acceptance.nodes})
    assert acceptance.cache_stats["hits"] > acceptance.cache_stats["misses"]


# -- admission control ------------------------------------------------------

def test_overload_rejects_with_reason():
    service = PushService(fleet="1x cpu",
                          queue=JobQueue(capacity=2, per_tenant_share=1.0))
    service.submit(JobSpec("a", small_config(device="cpu", steps=1)))
    service.submit(JobSpec("b", small_config(device="cpu", steps=1)))
    with pytest.raises(JobRejectedError) as excinfo:
        service.submit(JobSpec("c", small_config(device="cpu", steps=1)))
    assert "capacity" in str(excinfo.value)
    report = service.run()
    assert report.completed == 2 and report.rejected == 1
    rejected = report.jobs["c"]
    assert rejected.state == JobState.REJECTED
    assert rejected.error_type == "JobRejectedError"
    assert [e.event for e in rejected.events] == ["reject"]


def test_fair_share_caps_one_tenant():
    queue = JobQueue(capacity=8, per_tenant_share=0.25)
    assert queue.tenant_cap == 2
    service = PushService(fleet="1x cpu", queue=queue)
    service.submit(JobSpec("n1", small_config(device="cpu", steps=1),
                           tenant="noisy"))
    service.submit(JobSpec("n2", small_config(device="cpu", steps=1),
                           tenant="noisy"))
    with pytest.raises(JobRejectedError, match="fair share"):
        service.submit(JobSpec("n3", small_config(device="cpu", steps=1),
                               tenant="noisy"))
    # The other tenant is unaffected by noisy's backpressure.
    service.submit(JobSpec("q1", small_config(device="cpu", steps=1),
                           tenant="quiet"))
    assert service.run().completed == 3


def test_admission_evicts_lower_priority_queued_job():
    service = PushService(fleet="1x cpu",
                          queue=JobQueue(capacity=2, per_tenant_share=1.0))
    service.submit(JobSpec("low-a", small_config(device="cpu", steps=1),
                           tenant="bulk", priority=0))
    service.submit(JobSpec("low-b", small_config(device="cpu", steps=1),
                           tenant="bulk", priority=0))
    service.submit(JobSpec("urgent", small_config(device="cpu", steps=1),
                           tenant="vip", priority=5))
    report = service.run()
    evicted = report.jobs["low-b"]           # newest of the low-priority
    assert evicted.state == JobState.FAILED
    assert evicted.error_type == "JobPreemptedError"
    assert "evicted" in evicted.error
    assert report.jobs["urgent"].completed
    assert report.jobs["low-a"].completed


def test_infeasible_submits_reject_fast():
    service = PushService(fleet="2x iris-xe-max")
    cases = [
        (JobSpec("g", small_config(group="8x iris-xe-max")), "needs"),
        (JobSpec("d", small_config(device="p630")), "not in the fleet"),
        (JobSpec("auto", small_config(config="auto")), "auto"),
        (JobSpec("ladder", small_config(devices=("cpu",))), "ladder"),
        (JobSpec("fp", small_config(fault_plan="chaos")), "JobSpec"),
        (JobSpec("pc", small_config(persist_cache="/tmp/x.json")),
         "program cache"),
        (JobSpec("dl", small_config(), deadline_seconds=0.0), "deadline"),
        (JobSpec("bu", small_config(), budget_seconds=-1.0), "budget"),
    ]
    for spec, fragment in cases:
        with pytest.raises(JobRejectedError, match=fragment):
            service.submit(spec)
    service.submit(JobSpec("ok", small_config(steps=1)))
    with pytest.raises(JobRejectedError, match="already live"):
        service.submit(JobSpec("ok", small_config(steps=1)))
    # Rejections never leak into the runnable schedule, and a rejected
    # duplicate never shadows the live job's report entry.
    report = service.run()
    assert report.completed == 1
    assert report.rejected == len(cases)
    assert report.jobs["ok"].completed


def test_bad_specs_are_configuration_errors():
    with pytest.raises(ConfigurationError):
        JobSpec("")
    with pytest.raises(ConfigurationError):
        JobSpec("late", arrival=-1.0)
    with pytest.raises(ConfigurationError):
        JobQueue(capacity=0)
    with pytest.raises(ConfigurationError):
        JobQueue(per_tenant_share=0.0)
    with pytest.raises(ConfigurationError):
        PushService(checkpoint_every=0)


# -- runtime preemption, deadlines, budgets ---------------------------------

def test_runtime_preemption_resumes_bit_exact():
    service = PushService(fleet="1x iris-xe-max", preempt_margin=2)
    victim_config = small_config(steps=6)
    service.submit(JobSpec("victim", victim_config, priority=0))
    # Arrives mid-first-step of the victim (JIT makes step 0 long).
    service.submit(JobSpec("urgent", small_config(steps=2), priority=5,
                           arrival=1e-4))
    report = service.run()
    assert report.all_completed
    victim = report.jobs["victim"]
    assert victim.preemptions >= 1
    assert any(e.event == "preempt" for e in victim.events)
    assert victim.digest == solo_digest(victim_config)
    urgent = report.jobs["urgent"]
    assert urgent.completed
    # The urgent job ran in the gap the victim vacated.
    assert urgent.launched < victim.finished


def test_non_preemptible_jobs_are_left_alone():
    service = PushService(fleet="1x iris-xe-max", preempt_margin=2)
    service.submit(JobSpec("pinned", small_config(steps=6), priority=0,
                           preemptible=False))
    service.submit(JobSpec("urgent", small_config(steps=2), priority=5,
                           arrival=1e-4))
    report = service.run()
    assert report.all_completed
    assert report.jobs["pinned"].preemptions == 0
    # The urgent job simply waited for the node instead.
    assert report.jobs["urgent"].queue_wait_seconds > 0.0


def test_deadline_fails_typed():
    service = PushService(fleet="2x iris-xe-max")
    service.submit(JobSpec("rushed", small_config(),
                           deadline_seconds=1e-6))
    service.submit(JobSpec("calm", small_config()))
    report = service.run()
    rushed = report.jobs["rushed"]
    assert rushed.state == JobState.FAILED
    assert rushed.error_type == "JobDeadlineError"
    assert "deadline" in rushed.error
    assert report.jobs["calm"].completed


def test_budget_exhaustion_fails_typed():
    service = PushService(fleet="2x iris-xe-max")
    service.submit(JobSpec("broke", small_config(), budget_seconds=1e-6))
    report = service.run()
    broke = report.jobs["broke"]
    assert broke.state == JobState.FAILED
    assert broke.error_type == "JobDeadlineError"
    assert "budget" in broke.error
    with pytest.raises(JobDeadlineError):
        raise JobDeadlineError(broke.error)   # typed end, re-raisable


# -- failover ---------------------------------------------------------------

def test_device_loss_failover_accounting():
    service = PushService(fleet="2x iris-xe-max", checkpoint_every=2)
    config = small_config()
    service.submit(JobSpec("phoenix", config, fault_plan="device-loss"))
    report = service.run()
    job = report.jobs["phoenix"]
    assert job.completed
    assert job.digest == solo_digest(config)
    assert job.restores == 1
    assert len(job.devices) == 2 and len(job.devices_lost) == 1
    assert job.devices_lost[0] == job.devices[0]
    assert job.replayed_steps >= 0
    assert job.device_seconds > 0.0          # both placements banked
    events = [e.event for e in job.events]
    assert "device-lost" in events
    assert events.count("launch") == 2


def test_fleet_exhaustion_is_a_typed_failure():
    service = PushService(fleet="1x iris-xe-max")
    service.submit(JobSpec("doomed", small_config(),
                           fault_plan="device-loss"))
    report = service.run()                    # must return, not hang
    doomed = report.jobs["doomed"]
    assert doomed.state == JobState.FAILED
    assert doomed.error_type == "DeviceLostError"
    assert len(doomed.devices_lost) == 1
    with pytest.raises(DeviceLostError):
        raise DeviceLostError(doomed.error)
    assert all(not n["alive"] for n in report.nodes)


# -- placement --------------------------------------------------------------

def test_warm_affinity_bin_packing():
    # Job A warms the CPU's JIT profile; job B (unconstrained) then
    # prefers the warm CPU over the cold (but faster) Iris card.
    service = PushService(fleet="1x iris-xe-max, 1x cpu")
    service.submit(JobSpec("warmer", small_config(device="cpu", steps=2)))
    service.submit(JobSpec("drafter", small_config(device=None, steps=2),
                           arrival=100.0))
    report = service.run()
    assert report.all_completed
    by_key = {n["key"]: n for n in report.nodes}
    assert by_key["cpu"]["jobs_run"] == 2
    assert by_key["iris-xe-max"]["jobs_run"] == 0
    assert report.cache_stats["misses"] == 1  # one JIT for both jobs


def test_queue_wait_accounts_contention():
    service = PushService(fleet="1x iris-xe-max")
    service.submit(JobSpec("first", small_config(steps=2)))
    service.submit(JobSpec("second", small_config(steps=2)))
    report = service.run()
    assert report.all_completed
    assert report.jobs["first"].queue_wait_seconds == pytest.approx(0.0)
    # The second job waited for the whole first placement.
    assert report.jobs["second"].queue_wait_seconds > 0.0
    assert report.jobs["second"].launched >= report.jobs["first"].finished


def test_sharded_job_through_the_service():
    service = PushService(fleet=DEFAULT_FLEET)
    config = small_config(n_particles=600, group="2x iris-xe-max")
    service.submit(JobSpec("wide", config))
    service.submit(JobSpec("narrow", small_config(device="cpu", steps=2)))
    report = service.run()
    assert report.all_completed
    wide = report.jobs["wide"]
    assert len(wide.devices) == 2
    assert wide.nsps > 0.0
    assert wide.digest == solo_digest(config)


def test_arrivals_advance_the_idle_clock():
    service = PushService(fleet="1x cpu")
    service.submit(JobSpec("later", small_config(device="cpu", steps=1),
                           arrival=42.0))
    report = service.run()
    assert report.all_completed
    assert report.jobs["later"].launched >= 42.0
    assert report.makespan >= 42.0


# -- observability ----------------------------------------------------------

def test_events_stream_and_trace_instants():
    seen = []
    service = PushService(
        fleet="2x iris-xe-max", checkpoint_every=1,
        on_event=lambda name, event, detail: seen.append((name, event)))
    service.submit(JobSpec("observed", small_config()))
    tracer = Tracer()
    with tracing(tracer):
        report = service.run()
    assert report.all_completed
    assert ("observed", "admit") in seen
    assert ("observed", "launch") in seen
    assert seen[-1] == ("observed", "complete")
    names = [i.name for i in tracer.instants]
    assert "job:launch" in names
    assert "job:complete" in names
    assert "checkpoint:gc" in names           # GC ran at collect time
    job = report.jobs["observed"]
    assert job.checkpoints_saved > 3
    assert job.checkpoints_pruned > 0         # cadence 1 outruns keep=3


def test_job_report_serialises():
    service = PushService(fleet="2x iris-xe-max")
    service.submit(JobSpec("flat", small_config(steps=1)))
    report = service.run()
    flat = report.jobs["flat"].as_dict()
    json.dumps(flat)                          # JSON-ready, by contract
    assert flat["state"] == "completed"
    assert flat["events"] >= 3
    line = report.jobs["flat"].summary()
    assert "flat" in line and "completed" in line
    assert "completed" in report.summary()


# -- CLI --------------------------------------------------------------------

class TestServiceCli:
    def test_serve_exit_zero(self, capsys):
        from repro.cli import main
        assert main(["serve", "--jobs", "3", "--steps", "3",
                     "--serve-particles", "400"]) == 0
        out = capsys.readouterr().out
        assert "completed" in out
        assert "[job-1]" in out               # streamed progress lines

    def test_submit_survives_device_loss(self, capsys):
        from repro.cli import main
        assert main(["submit", "--name", "cli-job", "--steps", "4",
                     "--warmup", "1", "--submit-particles", "400",
                     "--fault-plan", "device-loss"]) == 0
        out = capsys.readouterr().out
        assert "cli-job" in out and "completed" in out

    def test_submit_rejection_exits_two(self):
        from repro.cli import main
        # Device not in the serve fleet: typed rejection, exit code 2.
        assert main(["submit", "--name", "nope", "--steps", "1",
                     "--fleet", "1x cpu"]) == 2
