"""Tests for the Landau-Lifshitz radiation-reaction extension."""

import math

import numpy as np
import pytest

from repro.constants import (ELECTRON_MASS, ELEMENTARY_CHARGE,
                             SPEED_OF_LIGHT, cyclotron_frequency)
from repro.core import (RadiationReactionPusher, SCHWINGER_FIELD,
                        gaunt_factor, get_pusher, quantum_chi,
                        radiated_power)
from repro.fields import NullField, UniformField
from repro.particles import ParticleEnsemble

MC = ELECTRON_MASS * SPEED_OF_LIGHT


def gyrating_electron(u=10.0, b0=1.0e8):
    """A strongly relativistic electron in a strong uniform B."""
    p0 = u * MC
    radius = p0 / (ELEMENTARY_CHARGE * b0 / SPEED_OF_LIGHT)
    ensemble = ParticleEnsemble.from_arrays(
        [[0.0, -radius, 0.0]], [[p0, 0.0, 0.0]])
    return ensemble, UniformField(b=(0.0, 0.0, b0)), b0


class TestDiagnostics:
    def test_schwinger_field_value(self):
        # E_S = m^2 c^3 / (e hbar) ~ 4.41e13 statvolt/cm.
        assert SCHWINGER_FIELD == pytest.approx(4.41e13, rel=0.01)

    def test_power_zero_without_fields(self):
        ensemble = ParticleEnsemble.from_arrays([[0, 0, 0]], [[MC, 0, 0]])
        fields = NullField().evaluate(np.zeros(1), np.zeros(1),
                                      np.zeros(1), 0.0)
        assert radiated_power(ensemble, fields)[0] == 0.0

    def test_synchrotron_power_formula(self):
        # Perpendicular B: P = (2/3) e^4 B^2 gamma^2 beta^2 / (m^2 c^3).
        ensemble, field, b0 = gyrating_electron()
        fields = field.evaluate(ensemble.component("x"),
                                ensemble.component("y"),
                                ensemble.component("z"), 0.0)
        gamma = float(ensemble.component("gamma")[0])
        beta2 = 1.0 - 1.0 / gamma ** 2
        expected = (2.0 * ELEMENTARY_CHARGE ** 4 * b0 ** 2 * gamma ** 2
                    * beta2 / (3.0 * ELECTRON_MASS ** 2
                               * SPEED_OF_LIGHT ** 3))
        assert radiated_power(ensemble, fields)[0] == pytest.approx(
            expected, rel=1e-9)

    def test_no_radiation_for_motion_along_b(self):
        # beta parallel to B: E + beta x B = 0 (with E = 0).
        ensemble = ParticleEnsemble.from_arrays([[0, 0, 0]],
                                                [[0.0, 0.0, 5.0 * MC]])
        field = UniformField(b=(0.0, 0.0, 1.0e8))
        fields = field.evaluate(np.zeros(1), np.zeros(1), np.zeros(1), 0.0)
        assert radiated_power(ensemble, fields)[0] == pytest.approx(
            0.0, abs=1e-30)

    def test_chi_formula(self):
        ensemble, field, b0 = gyrating_electron(u=10.0)
        fields = field.evaluate(ensemble.component("x"),
                                ensemble.component("y"),
                                ensemble.component("z"), 0.0)
        gamma = float(ensemble.component("gamma")[0])
        beta = math.sqrt(1.0 - 1.0 / gamma ** 2)
        expected = gamma * beta * b0 / SCHWINGER_FIELD
        assert quantum_chi(ensemble, fields)[0] == pytest.approx(
            expected, rel=1e-9)

    def test_gaunt_factor_limits(self):
        assert gaunt_factor(np.array([0.0]))[0] == pytest.approx(1.0)
        values = gaunt_factor(np.array([0.01, 0.1, 1.0, 10.0]))
        assert np.all(np.diff(values) < 0.0)       # decreasing
        assert values[-1] < 0.1                    # strong suppression


class TestRadiationReactionPusher:
    def test_registered(self):
        assert isinstance(get_pusher("boris-ll"), RadiationReactionPusher)

    def test_energy_decays_at_synchrotron_rate(self):
        # dgamma/dt = -k (gamma^2 - 1), k = 2 e^4 B^2 / (3 m^3 c^5).
        ensemble, field, b0 = gyrating_electron(u=10.0, b0=1.0e8)
        gamma0 = float(ensemble.component("gamma")[0])
        k = (2.0 * ELEMENTARY_CHARGE ** 4 * b0 ** 2
             / (3.0 * ELECTRON_MASS ** 3 * SPEED_OF_LIGHT ** 5))
        omega = cyclotron_frequency(b0, gamma0)
        dt = 2.0 * math.pi / omega / 200.0
        steps = 2000
        pusher = RadiationReactionPusher()
        for _ in range(steps):
            fields = field.evaluate(ensemble.component("x"),
                                    ensemble.component("y"),
                                    ensemble.component("z"), 0.0)
            pusher.push(ensemble, fields, dt)
        # Analytic solution of the decay ODE:
        # artanh(1/gamma(t))... integrate numerically for robustness.
        gamma = gamma0
        for _ in range(steps):
            gamma -= k * (gamma ** 2 - 1.0) * dt
        measured = float(ensemble.component("gamma")[0])
        assert measured < gamma0                 # it does radiate
        assert measured == pytest.approx(gamma, rel=0.02)

    def test_friction_preserves_direction(self):
        ensemble, field, _ = gyrating_electron()
        before = ensemble.momenta()[0].copy()
        fields = field.evaluate(ensemble.component("x"),
                                ensemble.component("y"),
                                ensemble.component("z"), 0.0)
        RadiationReactionPusher()._apply_friction(ensemble, fields, 1e-18)
        after = ensemble.momenta()[0]
        cosine = float(before @ after
                       / (np.linalg.norm(before) * np.linalg.norm(after)))
        assert cosine == pytest.approx(1.0, abs=1e-12)
        assert np.linalg.norm(after) < np.linalg.norm(before)

    def test_quantum_correction_radiates_less(self):
        classical, field, _ = gyrating_electron(u=1000.0, b0=1.0e10)
        quantum = classical.copy()
        dt = 1.0e-17
        fields = field.evaluate(classical.component("x"),
                                classical.component("y"),
                                classical.component("z"), 0.0)
        RadiationReactionPusher().push(classical, fields, dt)
        RadiationReactionPusher(quantum_corrected=True).push(
            quantum, fields, dt)
        assert quantum.component("gamma")[0] > classical.component("gamma")[0]

    def test_matches_boris_when_fields_weak(self):
        from repro.core import BorisPusher
        weak_field = UniformField(b=(0.0, 0.0, 1.0e3))
        a = ParticleEnsemble.from_arrays([[0, 0, 0]], [[0.5 * MC, 0, 0]])
        b = a.copy()
        fields = weak_field.evaluate(np.zeros(1), np.zeros(1),
                                     np.zeros(1), 0.0)
        RadiationReactionPusher().push(a, fields, 1e-15)
        BorisPusher().push(b, fields, 1e-15)
        np.testing.assert_allclose(a.momenta(), b.momenta(), rtol=1e-10)

    def test_friction_clamped_at_zero(self):
        # Pathologically large dt: momentum must not flip sign.
        ensemble, field, _ = gyrating_electron(u=1000.0, b0=1.0e12)
        fields = field.evaluate(ensemble.component("x"),
                                ensemble.component("y"),
                                ensemble.component("z"), 0.0)
        RadiationReactionPusher()._apply_friction(ensemble, fields, 1.0)
        assert np.linalg.norm(ensemble.momenta()[0]) == 0.0
        assert ensemble.component("gamma")[0] == pytest.approx(1.0)
