"""Shared fixtures for the repro test suite."""

import numpy as np
import pytest

from repro.fp import Precision
from repro.particles import (Layout, default_type_table, make_ensemble)


@pytest.fixture
def rng():
    """Deterministic RNG for randomized (non-hypothesis) tests."""
    return np.random.default_rng(20210901)


@pytest.fixture
def type_table():
    """The default electron/positron/proton table."""
    return default_type_table()


@pytest.fixture(params=[Layout.AOS, Layout.SOA],
                ids=["aos", "soa"])
def layout(request):
    """Both particle memory layouts."""
    return request.param


@pytest.fixture(params=[Precision.SINGLE, Precision.DOUBLE],
                ids=["float", "double"])
def precision(request):
    """Both floating-point precisions."""
    return request.param


@pytest.fixture
def small_ensemble(layout, rng):
    """A 64-particle double-precision ensemble with random state."""
    ensemble = make_ensemble(64, layout, Precision.DOUBLE)
    ensemble.set_positions(rng.uniform(-1.0, 1.0, (64, 3)))
    from repro.constants import ELECTRON_MASS, SPEED_OF_LIGHT
    scale = ELECTRON_MASS * SPEED_OF_LIGHT
    ensemble.set_momenta(rng.normal(0.0, 0.3 * scale, (64, 3)))
    return ensemble
