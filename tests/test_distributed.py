"""Static pieces of the distributed layer: links, sharding, groups.

The runner's end-to-end behaviour (bit-exactness, overlap, recovery)
lives in ``test_distributed_runner.py``; this module pins the pure
building blocks — the interconnect cost model, the apportionment
arithmetic every strategy routes through, the group spec grammar and
the instance-name discipline device-loss recovery depends on.
"""

import numpy as np
import pytest

from repro.bench.calibration import device_by_name
from repro.distributed import (DeviceGroup, EvenSharding, ExchangeModel,
                               ExchangePolicy, LinkDescriptor, LinkTable,
                               NspsRebalancer, ProportionalSharding,
                               default_link_table, parse_group_spec,
                               split_counts, strategy_by_name,
                               STRATEGY_NAMES)
from repro.errors import ConfigurationError
from repro.fp import Precision


# -- interconnect links -----------------------------------------------------

class TestLinks:
    def test_transfer_time_is_latency_plus_bytes_over_bandwidth(self):
        link = LinkDescriptor("test", bandwidth=1e9, latency=2e-6)
        assert link.transfer_seconds(0) == pytest.approx(2e-6)
        assert link.transfer_seconds(10**9) == pytest.approx(1.0 + 2e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinkDescriptor("bad", bandwidth=0.0)
        with pytest.raises(ConfigurationError):
            LinkDescriptor("bad", bandwidth=1e9, latency=-1e-6)
        with pytest.raises(ConfigurationError):
            LinkDescriptor("ok", bandwidth=1e9).transfer_seconds(-1)

    def test_compose_is_store_and_forward(self):
        fast = LinkDescriptor("fast", bandwidth=80e9, latency=1e-6)
        slow = LinkDescriptor("slow", bandwidth=8e9, latency=5e-6)
        both = fast.compose(slow)
        assert both.bandwidth == pytest.approx(8e9)   # narrow hop wins
        assert both.latency == pytest.approx(6e-6)    # latencies add

    def test_default_table_prices_every_paper_device(self):
        table = default_link_table()
        assert table.known_keys() == ("cpu", "iris-xe-max", "p630")
        # The discrete card's PCIe hop bounds any pair it is part of.
        pair = table.between("cpu", "iris-xe-max")
        assert pair.bandwidth == table.host_link("iris-xe-max").bandwidth

    def test_unknown_key_raises(self):
        with pytest.raises(ConfigurationError, match="no link registered"):
            default_link_table().host_link("a770")

    def test_extra_links_merge_and_override(self):
        custom = LinkDescriptor("custom", bandwidth=1e9)
        table = default_link_table(extra={"a770": custom})
        assert table.host_link("a770") is custom
        with pytest.raises(ConfigurationError):
            LinkTable({})


# -- apportionment ----------------------------------------------------------

class TestSplitCounts:
    def test_even_remainder_goes_to_lower_indices(self):
        assert split_counts(10, [1, 1, 1]) == [4, 3, 3]

    def test_zero_weight_yields_zero_particle_shard(self):
        assert split_counts(3, [0.0, 5.0, 5.0]) == [0, 2, 1]

    def test_more_devices_than_particles(self):
        assert split_counts(2, [1] * 5) == [1, 1, 0, 0, 0]

    def test_all_zero_weights_fall_back_to_even(self):
        assert split_counts(4, [0.0, 0.0]) == [2, 2]

    def test_heterogeneous_weights_sum_exactly(self):
        # The acceptance-critical property: no particle lost or doubled
        # for any awkward weight vector (naive int(n*w) rounding fails
        # most of these).
        weights = [164.0, 35.0, 60.0]  # the paper devices' bandwidths
        for n in (1, 2, 3, 7, 1000, 10_000_019):
            counts = split_counts(n, weights)
            assert sum(counts) == n
            assert all(c >= 0 for c in counts)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            split_counts(10, [])
        with pytest.raises(ConfigurationError):
            split_counts(-1, [1.0])
        with pytest.raises(ConfigurationError):
            split_counts(10, [1.0, -0.5])
        with pytest.raises(ConfigurationError):
            split_counts(10, [1.0, float("nan")])


# -- strategies -------------------------------------------------------------

PAPER_DEVICES = [device_by_name(k) for k in ("cpu", "p630", "iris-xe-max")]


class TestStrategies:
    def test_even(self):
        assert EvenSharding().initial_counts(10, PAPER_DEVICES) == [4, 3, 3]

    def test_bandwidth_proportional_follows_table1(self):
        counts = ProportionalSharding("bandwidth").initial_counts(
            100_000, PAPER_DEVICES)
        cpu, p630, iris = counts
        assert sum(counts) == 100_000
        assert cpu > iris > p630  # 164 > 60 > 35 GB/s

    def test_flops_ranking_flips_with_precision(self):
        # SP: the Iris Xe Max out-muscles the P630; DP emulation
        # collapses it below the iGPU — the placement consequence of
        # the paper's no-native-DP observation.
        sp = ProportionalSharding("flops", Precision.SINGLE)
        dp = ProportionalSharding("flops", Precision.DOUBLE)
        _, sp_p630, sp_iris = sp.initial_counts(100_000, PAPER_DEVICES)
        _, dp_p630, dp_iris = dp.initial_counts(100_000, PAPER_DEVICES)
        assert sp_iris > sp_p630
        assert dp_iris < dp_p630

    def test_by_name(self):
        for name in STRATEGY_NAMES:
            assert strategy_by_name(name).name == name
        with pytest.raises(ConfigurationError):
            strategy_by_name("round-robin")
        with pytest.raises(ConfigurationError):
            ProportionalSharding("latency")


class TestNspsRebalancer:
    def test_converges_to_throughput_proportional_split(self):
        # Device 0 measures 1 ns, device 1 measures 3 ns per
        # particle-step: the fixed point gives device 0 three quarters.
        strategy = NspsRebalancer(smoothing=1.0, tolerance=0.01)
        counts = strategy.initial_counts(1000, PAPER_DEVICES[:2])
        assert counts == [500, 500]
        for _ in range(20):
            new = strategy.rebalanced_counts(1000, counts, [1.0, 3.0])
            if new is None:
                break
            counts = new
        assert strategy.converged
        assert counts == [750, 250]

    def test_converged_partition_stays_put(self):
        strategy = NspsRebalancer(smoothing=1.0)
        strategy.initial_counts(1000, PAPER_DEVICES[:2])
        counts = strategy.rebalanced_counts(1000, [500, 500], [1.0, 1.0])
        # Even feed from an even split: converged immediately.
        assert counts is None
        assert strategy.converged
        assert strategy.rebalanced_counts(1000, [500, 500],
                                          [9.0, 1.0]) is None

    def test_unmeasured_shard_keeps_previous_weight(self):
        # A NaN sample (empty shard, skipped step) must not zero the
        # shard out forever.
        strategy = NspsRebalancer(smoothing=1.0, tolerance=0.0)
        strategy.initial_counts(1000, PAPER_DEVICES[:2])
        counts = strategy.rebalanced_counts(1000, [500, 500],
                                            [2.0, float("nan")])
        # The unmeasured shard inherits the measured one's weight.
        assert counts == [500, 500] or counts is None

    def test_reset_forgets_history(self):
        strategy = NspsRebalancer(smoothing=1.0)
        strategy.initial_counts(1000, PAPER_DEVICES[:2])
        strategy.rebalanced_counts(1000, [500, 500], [1.0, 1.0])
        assert strategy.converged
        strategy.reset()
        assert not strategy.converged
        assert strategy._weights is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NspsRebalancer(smoothing=0.0)
        with pytest.raises(ConfigurationError):
            NspsRebalancer(tolerance=-0.1)
        strategy = NspsRebalancer()
        with pytest.raises(ConfigurationError):
            strategy.rebalanced_counts(10, [5, 5], [1.0])


# -- group specs and groups -------------------------------------------------

class TestGroupSpec:
    def test_repeat_and_mixed_entries(self):
        assert parse_group_spec("2x iris-xe-max") == ["iris-xe-max"] * 2
        assert parse_group_spec("cpu, p630, iris-xe-max") == \
            ["cpu", "p630", "iris-xe-max"]
        assert parse_group_spec("cpu,2x iris-xe-max") == \
            ["cpu", "iris-xe-max", "iris-xe-max"]

    def test_key_containing_x_is_not_a_repeat_count(self):
        # "iris-xe-max" contains an "x"; the prefix rule must only
        # trigger on a leading integer.
        assert parse_group_spec("iris-xe-max") == ["iris-xe-max"]

    def test_errors(self):
        for bad in ("", "cpu,,cpu", "0x cpu", "a770", "3x"):
            with pytest.raises(ConfigurationError):
                parse_group_spec(bad)


class TestDeviceGroup:
    def test_members_get_unique_instance_names(self):
        group = DeviceGroup.from_spec("cpu, 2x iris-xe-max")
        assert len(group) == 3
        assert group.names == ["2x Intel Xeon Platinum 8260L #0",
                               "Intel Iris Xe Max #0",
                               "Intel Iris Xe Max #1"]
        assert len(set(group.names)) == 3

    def test_queues_are_out_of_order_and_independent(self):
        group = DeviceGroup.from_spec("2x iris-xe-max")
        a, b = (m.queue for m in group)
        assert a is not b
        assert not a.config.in_order and not b.config.in_order

    def test_link_between_members(self):
        group = DeviceGroup.from_spec("cpu, iris-xe-max")
        link = group.link_between(0, 1)
        assert link.bandwidth == pytest.approx(7.88e9)

    def test_drop_preserves_survivor_identities(self):
        # Fault state is keyed by instance name: if the survivor of
        # "2x iris" were renamed "#0", it would inherit the dead
        # card's injected loss and die immediately on the next step.
        group = DeviceGroup.from_spec("2x iris-xe-max")
        survivors = group.drop(0)
        assert survivors.names == ["Intel Iris Xe Max #1"]
        assert survivors.members[0].key == "iris-xe-max"

    def test_drop_validation(self):
        group = DeviceGroup.from_spec("iris-xe-max")
        with pytest.raises(ConfigurationError):
            group.drop(1)
        with pytest.raises(ConfigurationError):
            group.drop(0)  # cannot drop the last device

    def test_names_length_must_match(self):
        with pytest.raises(ConfigurationError):
            DeviceGroup(["cpu"], names=["a", "b"])
        with pytest.raises(ConfigurationError):
            DeviceGroup([])


# -- exchange policy and topology ------------------------------------------

class TestExchange:
    def test_halo_count(self):
        policy = ExchangePolicy(halo_fraction=0.02)
        assert policy.halo_count(0) == 0
        assert policy.halo_count(-3) == 0
        assert policy.halo_count(1) == 1      # never less than one
        assert policy.halo_count(10_000) == 200

    def test_policy_validation(self):
        for kwargs in (dict(halo_fraction=1.5),
                       dict(bytes_per_particle_extra=-1),
                       dict(watchdog_seconds=-1.0),
                       dict(max_attempts=0)):
            with pytest.raises(ConfigurationError):
                ExchangePolicy(**kwargs)

    def test_ring_neighbours(self):
        policy = ExchangePolicy()
        solo = ExchangeModel(DeviceGroup.from_spec("cpu"), policy, 32)
        assert solo._neighbours(0) == []
        pair = ExchangeModel(DeviceGroup.from_spec("2x p630"), policy, 32)
        assert pair._neighbours(0) == [1]      # deduplicated ring of two
        trio = ExchangeModel(
            DeviceGroup.from_spec("cpu, p630, iris-xe-max"), policy, 32)
        assert sorted(trio._neighbours(1)) == [0, 2]

    def test_single_member_group_exchanges_nothing(self):
        model = ExchangeModel(DeviceGroup.from_spec("cpu"),
                              ExchangePolicy(), 32)
        events = model.exchange_step(0, [1000], [None])
        assert events == [None]
        assert model.report.transfers == 0
