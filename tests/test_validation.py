"""Tests for the one-shot validation report."""

import pytest

from repro.bench import ValidationReport, validate_against_paper


class TestReportStructure:
    def test_add_and_count(self):
        report = ValidationReport()
        report.add("a", "x", True)
        report.add("b", "y", False)
        assert report.n_passed == 1
        assert not report.all_passed

    def test_render_contains_marks(self):
        report = ValidationReport()
        report.add("good claim", "value", True)
        report.add("bad claim", "value", False)
        text = report.render()
        assert "[PASS] good claim" in text
        assert "[FAIL] bad claim" in text
        assert "1/2 checks passed" in text


class TestFullValidation:
    @pytest.fixture(scope="class")
    def report(self):
        # Reduced particle count keeps this under a couple of minutes;
        # the working set still exceeds the simulated caches.
        return validate_against_paper(n=2_000_000)

    def test_all_claims_pass(self, report):
        failed = [c.claim for c in report.checks if not c.passed]
        assert report.all_passed, f"failed claims: {failed}"

    def test_covers_all_artefacts(self, report):
        text = report.render()
        assert "Table 2" in text
        assert "Table 3" in text
        assert "Fig. 1" in text
        assert "First iteration" in text
        assert "Hyperthreading" in text

    def test_check_count(self, report):
        assert len(report.checks) == 17


class TestCliValidate:
    def test_exit_code_zero_on_pass(self, capsys):
        from repro.cli import main
        assert main(["--particles", "1000000", "validate"]) == 0
        assert "checks passed" in capsys.readouterr().out
