"""Tests for the FFT-based (PSATD) Maxwell solver."""

import math

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.errors import SimulationError
from repro.fields import UniformField, YeeGrid
from repro.pic import FdtdSolver, SpectralSolver, max_stable_dt


def vacuum_grid(cells=16, spacing=1.0e-5):
    return YeeGrid((0.0, 0.0, 0.0), (spacing, spacing, spacing),
                   (cells, 4, 4))


def seed_standing_mode(grid, harmonics=1):
    """Lowest standing E_y mode along x at corner-co-located nodes."""
    nx = grid.dims[0]
    k = 2.0 * math.pi * harmonics / (nx * grid.spacing[0])
    x = grid.node_coordinates(0)
    grid.component("ey")[:] = np.cos(k * x)[:, None, None]
    return k


class TestVacuumExactness:
    def test_full_period_returns_exactly(self):
        # PSATD is exact in vacuum: one period brings the mode back to
        # machine precision (FDTD would leave dispersion error).
        grid = vacuum_grid()
        k = seed_standing_mode(grid)
        before = grid.component("ey").copy()
        period = 2.0 * math.pi / (SPEED_OF_LIGHT * k)
        solver = SpectralSolver(grid, period / 16.0)
        solver.run(16)
        np.testing.assert_allclose(grid.component("ey"), before,
                                   rtol=1e-12, atol=1e-12)

    def test_quarter_period_swaps_e_and_b(self):
        grid = vacuum_grid()
        k = seed_standing_mode(grid)
        amplitude = np.abs(grid.component("ey")).max()
        period = 2.0 * math.pi / (SPEED_OF_LIGHT * k)
        solver = SpectralSolver(grid, period / 4.0)
        solver.step()
        # All electric energy has become magnetic.
        assert np.abs(grid.component("ey")).max() < 1e-12 * amplitude
        assert np.abs(grid.component("bz")).max() == pytest.approx(
            amplitude, rel=1e-12)

    def test_no_courant_limit(self):
        # A dt far beyond the FDTD CFL limit stays exact.
        grid = vacuum_grid()
        k = seed_standing_mode(grid)
        before = grid.component("ey").copy()
        period = 2.0 * math.pi / (SPEED_OF_LIGHT * k)
        cfl = max_stable_dt(grid.spacing, 1.0)
        assert period > 10.0 * cfl           # demonstrably super-CFL
        solver = SpectralSolver(grid, period)
        solver.step()
        np.testing.assert_allclose(grid.component("ey"), before,
                                   rtol=1e-12)

    def test_uniform_field_static(self):
        grid = vacuum_grid()
        grid.fill_from_source(UniformField(e=(1, 2, 3), b=(4, 5, 6)), 0.0)
        solver = SpectralSolver(grid, 1e-15)
        solver.run(10)
        assert np.allclose(grid.component("ex"), 1.0)
        assert np.allclose(grid.component("by"), 5.0)

    def test_energy_exactly_conserved(self):
        grid = vacuum_grid()
        seed_standing_mode(grid, harmonics=2)
        solver = SpectralSolver(grid, 0.37e-15)     # incommensurate dt
        start = grid.field_energy()
        solver.run(50)
        assert grid.field_energy() == pytest.approx(start, rel=1e-12)

    def test_divergence_b_zero(self):
        grid = vacuum_grid()
        seed_standing_mode(grid)
        solver = SpectralSolver(grid, 1e-15)
        solver.run(20)
        scale = np.abs(grid.component("bz")).max() / grid.spacing[0] + 1e-30
        assert np.abs(solver.divergence_b()).max() < 1e-10 * scale


class TestCurrentDrive:
    def test_uniform_current_drives_e_linearly(self):
        grid = vacuum_grid()
        j0 = 1.0e8
        grid.currents["jx"][:] = j0
        dt = 1.0e-16
        solver = SpectralSolver(grid, dt)
        solver.run(10)
        expected = -4.0 * math.pi * j0 * 10 * dt
        assert np.allclose(grid.component("ex"), expected, rtol=1e-12)

    def test_matches_fdtd_for_resolved_waves(self):
        # Both solvers must agree on a well-resolved mode over a short
        # time (FDTD is 2nd order; agreement at the dispersion-error
        # level).
        grid_a, grid_b = vacuum_grid(cells=64), vacuum_grid(cells=64)
        seed_standing_mode(grid_a, harmonics=1)
        # FDTD stores Ey staggered; same cosine at its own positions.
        nx = grid_b.dims[0]
        k = 2.0 * math.pi / (nx * grid_b.spacing[0])
        x_ey = grid_b.component_coordinates("ey", 0)
        grid_b.component("ey")[:] = np.cos(k * x_ey)[:, None, None]

        dt = max_stable_dt(grid_b.spacing, 0.5)
        steps = 100
        SpectralSolver(grid_a, dt).run(steps)
        FdtdSolver(grid_b, dt).run(steps)
        # Compare mode amplitude histories via energy.
        assert grid_a.field_energy() == pytest.approx(
            grid_b.field_energy(), rel=0.02)

    def test_validation(self):
        with pytest.raises(SimulationError):
            SpectralSolver(vacuum_grid(), 0.0)
        solver = SpectralSolver(vacuum_grid(), 1e-16)
        with pytest.raises(SimulationError):
            solver.run(-1)


class TestSpectralPic:
    def test_plasma_oscillation_with_spectral_solver(self):
        from repro.constants import ELECTRON_MASS, ELEMENTARY_CHARGE
        from repro.particles import ParticleEnsemble
        from repro.pic import EnergyHistory, PicSimulation, plasma_frequency

        density = 1.0e18
        omega_p = plasma_frequency(density, ELECTRON_MASS,
                                   ELEMENTARY_CHARGE)
        dx = 2.0e-5
        dims = (16, 4, 4)
        grid = YeeGrid((0, 0, 0), (dx, dx, dx), dims)
        counts = [d * 2 for d in dims]
        axes = [(np.arange(c) + 0.5) * (d * dx / c)
                for c, d in zip(counts, dims)]
        gx, gy, gz = np.meshgrid(*axes, indexing="ij")
        positions = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)
        n = positions.shape[0]
        weight = density * grid.cell_volume * grid.num_cells / n
        v0 = 1.0e-3 * SPEED_OF_LIGHT
        momenta = np.zeros((n, 3))
        momenta[:, 0] = ELECTRON_MASS * v0 * np.sin(
            2.0 * math.pi * positions[:, 0] / (dims[0] * dx))
        electrons = ParticleEnsemble.from_arrays(
            positions, momenta, weights=np.full(n, weight))
        dt = 0.35 * dx / (SPEED_OF_LIGHT * math.sqrt(3.0))
        simulation = PicSimulation(grid, electrons, dt,
                                   field_solver="spectral")
        history = EnergyHistory()
        steps = int(3.0 * 2.0 * math.pi / omega_p / dt)
        simulation.run(steps, energy_history=history)
        measured = history.dominant_frequency() / 2.0
        assert measured == pytest.approx(omega_p, rel=0.02)

    def test_unknown_solver_rejected(self):
        from repro.particles import ParticleEnsemble
        from repro.pic import PicSimulation
        grid = vacuum_grid()
        ensemble = ParticleEnsemble.from_arrays([[1e-5] * 3], [[0] * 3])
        with pytest.raises(SimulationError):
            PicSimulation(grid, ensemble, 1e-17, field_solver="psatd2")
