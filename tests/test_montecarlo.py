"""Tests for the seeded Monte Carlo operators (repro.pic.montecarlo)."""

import numpy as np
import pytest

from repro.constants import ELECTRON_MASS, SPEED_OF_LIGHT
from repro.errors import ConfigurationError
from repro.fields.base import FieldValues
from repro.fp import Precision
from repro.particles import Layout, make_ensemble
from repro.pic import (CollisionOperator, IonizationOperator, charge_weight,
                       step_generator)


def seeded_ensemble(layout=Layout.SOA, n=64, seed=11):
    rng = np.random.default_rng(seed)
    ensemble = make_ensemble(n, layout, Precision.DOUBLE)
    ensemble.set_positions(rng.uniform(0.0, 4.0, (n, 3)))
    scale = ELECTRON_MASS * SPEED_OF_LIGHT
    ensemble.set_momenta(rng.normal(0.0, 0.4 * scale, (n, 3)))
    return ensemble


def uniform_fields(n, e0):
    shape = FieldValues(*(np.full(n, e0) if i < 3 else np.zeros(n)
                          for i in range(6)))
    return shape


class TestStepGenerator:
    def test_pure_function_of_key_and_counter(self):
        a = step_generator(7, "collide", 3, stream=1).random(8)
        b = step_generator(7, "collide", 3, stream=1).random(8)
        np.testing.assert_array_equal(a, b)

    def test_step_stream_tag_and_seed_all_enter_the_key(self):
        base = step_generator(7, "collide", 3, stream=1).random(8)
        for other in (step_generator(7, "collide", 4, stream=1),
                      step_generator(7, "collide", 3, stream=2),
                      step_generator(7, "ionize", 3, stream=1),
                      step_generator(8, "collide", 3, stream=1)):
            assert not np.array_equal(base, other.random(8))

    def test_no_hidden_state_between_steps(self):
        # Drawing step 3 then step 5 gives the same step-5 stream as
        # drawing step 5 alone: the counter, not history, decides.
        step_generator(0, "collide", 3).random(100)
        direct = step_generator(0, "collide", 5).random(10)
        np.testing.assert_array_equal(
            direct, step_generator(0, "collide", 5).random(10))

    def test_negative_step_rejected(self):
        with pytest.raises(ConfigurationError):
            step_generator(0, "collide", -1)


class TestCollisionOperator:
    def test_preserves_momentum_magnitude(self):
        ensemble = seeded_ensemble()
        p_before = np.linalg.norm(ensemble.momenta(), axis=1)
        CollisionOperator(frequency=0.5, seed=3).apply(
            ensemble, None, step=0, dt=1.0)
        p_after = np.linalg.norm(ensemble.momenta(), axis=1)
        np.testing.assert_allclose(p_after, p_before, rtol=1e-12)

    def test_rotates_directions(self):
        ensemble = seeded_ensemble()
        before = ensemble.momenta().copy()
        CollisionOperator(frequency=0.5, seed=3).apply(
            ensemble, None, step=0, dt=1.0)
        assert np.abs(ensemble.momenta() - before).max() > 0.0

    def test_deterministic_per_seed(self):
        results = []
        for _ in range(2):
            ensemble = seeded_ensemble()
            CollisionOperator(frequency=0.2, seed=9).apply(
                ensemble, None, step=4, dt=0.5, stream=1)
            results.append(ensemble.momenta().copy())
        np.testing.assert_array_equal(results[0], results[1])

    def test_layout_independent_bits(self):
        outcomes = {}
        for layout in (Layout.AOS, Layout.SOA):
            ensemble = seeded_ensemble(layout)
            CollisionOperator(frequency=0.2, seed=9).apply(
                ensemble, None, step=4, dt=0.5)
            outcomes[layout] = ensemble.momenta().copy()
        np.testing.assert_array_equal(outcomes[Layout.AOS],
                                      outcomes[Layout.SOA])

    def test_zero_momentum_particle_untouched(self):
        ensemble = seeded_ensemble(n=4)
        ensemble.set_momenta(np.zeros((4, 3)))
        CollisionOperator(frequency=5.0, seed=0).apply(
            ensemble, None, step=0, dt=1.0)
        np.testing.assert_array_equal(ensemble.momenta(),
                                      np.zeros((4, 3)))

    def test_zero_frequency_is_identity(self):
        ensemble = seeded_ensemble()
        before = ensemble.momenta().copy()
        CollisionOperator(frequency=0.0, seed=0).apply(
            ensemble, None, step=0, dt=1.0)
        np.testing.assert_array_equal(ensemble.momenta(), before)

    def test_negative_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            CollisionOperator(frequency=-1.0)


class TestIonizationOperator:
    def test_requires_gathered_fields(self):
        ensemble = seeded_ensemble()
        operator = IonizationOperator(rate=1.0, critical_field=1.0)
        with pytest.raises(ConfigurationError):
            operator.apply(ensemble, None, step=0, dt=1.0)

    def test_strong_field_grows_weights(self):
        ensemble = seeded_ensemble()
        fields = uniform_fields(ensemble.size, e0=1e6)
        operator = IonizationOperator(rate=50.0, critical_field=1.0,
                                      yield_fraction=0.5, seed=2)
        before = ensemble.component("weight").copy()
        operator.apply(ensemble, fields, step=0, dt=1.0)
        after = ensemble.component("weight")
        assert np.all(after >= before)
        assert np.any(after > before)

    def test_zero_field_never_ionizes(self):
        ensemble = seeded_ensemble()
        fields = uniform_fields(ensemble.size, e0=0.0)
        before = ensemble.component("weight").copy()
        IonizationOperator(rate=50.0, critical_field=1.0, seed=2).apply(
            ensemble, fields, step=0, dt=1.0)
        np.testing.assert_array_equal(ensemble.component("weight"), before)

    def test_invalidates_charge_weight_cache(self):
        ensemble = seeded_ensemble()
        stale = charge_weight(ensemble)
        assert charge_weight(ensemble) is stale          # cached
        fields = uniform_fields(ensemble.size, e0=1e6)
        IonizationOperator(rate=50.0, critical_field=1.0,
                           yield_fraction=0.5, seed=2).apply(
            ensemble, fields, step=0, dt=1.0)
        fresh = charge_weight(ensemble)
        assert fresh is not stale
        assert np.abs(fresh).sum() > np.abs(stale).sum()

    def test_deterministic_per_seed(self):
        results = []
        for _ in range(2):
            ensemble = seeded_ensemble()
            fields = uniform_fields(ensemble.size, e0=1e6)
            IonizationOperator(rate=5.0, critical_field=2.0,
                               seed=13).apply(ensemble, fields,
                                              step=2, dt=1.0, stream=3)
            results.append(ensemble.component("weight").copy())
        np.testing.assert_array_equal(results[0], results[1])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            IonizationOperator(rate=-1.0, critical_field=1.0)
        with pytest.raises(ConfigurationError):
            IonizationOperator(rate=1.0, critical_field=0.0)
        with pytest.raises(ConfigurationError):
            IonizationOperator(rate=1.0, critical_field=1.0,
                               yield_fraction=-0.1)
