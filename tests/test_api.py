"""The ``repro.api`` facade and the deprecation shims behind it.

One ``RunConfig`` must drive all three engines (single-device,
resilient, sharded) and produce comparable ``RunReport`` objects; the
pre-facade runner names must keep working while warning; and every
failure escaping the facade must be a documented
:class:`~repro.errors.ReproError` subclass — the error-surfacing
guarantee stated in :mod:`repro.errors`.
"""

import warnings

import pytest

from repro.api import RunConfig, RunReport, run_push
from repro.bench import paper_time_step, paper_wave
from repro.bench.scenarios import paper_ensemble
from repro.errors import (ConfigurationError, KernelError, ReproError)
from repro.fp import Precision
from repro.particles.ensemble import Layout

N = 4096
STEPS = 5


def _config(**kwargs):
    defaults = dict(n_particles=N, steps=STEPS, warmup=1)
    defaults.update(kwargs)
    return RunConfig(**defaults)


class TestModeSelection:
    def test_default_is_single_device(self):
        assert _config().mode == "single"

    def test_group_selects_sharded(self):
        assert _config(group="2x iris-xe-max").mode == "sharded"

    def test_ladder_or_fault_plan_selects_resilient(self):
        assert _config(devices=("p630", "cpu")).mode == "resilient"
        assert _config(fault_plan="transient").mode == "resilient"

    def test_group_plus_ladder_rejected(self):
        with pytest.raises(ConfigurationError):
            run_push(_config(group="2x cpu", devices=("cpu",)))


class TestRunPush:
    def test_single_device_run(self):
        report = run_push(_config(fusion=True))
        assert isinstance(report, RunReport)
        assert report.mode == "single"
        assert report.nsps > 0
        assert report.first_step_nsps > report.nsps  # JIT + cold pages
        assert report.cache_stats["misses"] == 1
        assert len(report.digest) == 64
        assert report.as_dict()["nsps"] == report.nsps

    def test_string_layout_and_precision_accepted(self):
        report = run_push(_config(layout="aos", precision="double"))
        assert report.layout == "AoS"
        assert report.precision == "double"

    def test_resilient_run(self):
        report = run_push(_config(fault_plan="transient",
                                  checkpoint_every=2))
        assert report.mode == "resilient"
        assert report.recovery is not None
        assert report.recovery.completed

    def test_sharded_run_shares_program_cache(self):
        report = run_push(_config(n_particles=8192,
                                  group="2x iris-xe-max", fusion=True))
        assert report.mode == "sharded"
        assert report.group_report.n_devices == 2
        # one device model => exactly one JIT compile across both shards
        assert report.cache_stats["misses"] == 1

    def test_all_modes_agree_on_physics(self):
        digests = {
            run_push(_config()).digest,
            run_push(_config(fusion=True)).digest,
            run_push(_config(group="2x iris-xe-max", fusion=True)).digest,
            run_push(_config(devices=("iris-xe-max", "cpu"))).digest,
        }
        assert len(digests) == 1

    def test_fused_beats_unfused_on_paper_scenario(self):
        fused = run_push(_config(n_particles=100_000, fusion=True))
        unfused = run_push(_config(n_particles=100_000, fusion=False))
        assert fused.digest == unfused.digest
        assert fused.nsps < unfused.nsps
        assert fused.kernels_eliminated >= 1

    def test_persist_cache_warms_second_process(self, tmp_path):
        path = str(tmp_path / "programs.json")
        cold = run_push(_config(fusion=True, persist_cache=path))
        warm = run_push(_config(fusion=True, persist_cache=path))
        assert cold.cache_stats["misses"] == 1
        assert warm.cache_stats["misses"] == 0
        assert warm.first_step_nsps < cold.first_step_nsps

    def test_trace_written(self, tmp_path):
        out = tmp_path / "push.json"
        report = run_push(_config(trace_path=str(out)))
        assert report.trace_path == str(out)
        assert out.exists() and out.stat().st_size > 0


class TestErrorSurfacing:
    def test_bad_layout_is_configuration_error(self):
        with pytest.raises(ConfigurationError):
            run_push(_config(layout="bogus"))

    def test_bad_scenario_is_configuration_error(self):
        with pytest.raises(ConfigurationError):
            run_push(_config(scenario="magnetostatic"))

    def test_bad_group_spec_is_configuration_error(self):
        with pytest.raises(ConfigurationError):
            run_push(_config(group="7 teapots"))

    def test_foreign_exceptions_are_wrapped(self, monkeypatch):
        # a bug deep in a kernel body must not escape as a bare
        # RuntimeError: the facade wraps it into the documented
        # hierarchy with the original chained as __cause__
        import repro.api as api

        def boom(config, source, dt):
            raise RuntimeError("numpy blew up")
        monkeypatch.setitem(api._RUNNERS, "single", boom)
        with pytest.raises(KernelError) as excinfo:
            run_push(_config())
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_repro_errors_pass_through_unwrapped(self, monkeypatch):
        import repro.api as api

        def boom(config, source, dt):
            raise ConfigurationError("already documented")
        monkeypatch.setitem(api._RUNNERS, "single", boom)
        with pytest.raises(ConfigurationError,
                           match="already documented"):
            run_push(_config())


class TestRunnerShimsRemoved:
    """The PR-4 ``*PushRunner`` deprecation shims are gone for good."""

    def _queue(self):
        from repro.bench.calibration import cost_model_for, device_by_name
        from repro.oneapi.queue import Queue, RuntimeConfig
        device = device_by_name("iris-xe-max")
        return Queue(device, RuntimeConfig(runtime="dpcpp"),
                     cost_model_for(device))

    def test_shim_names_are_gone(self):
        import repro.distributed as distributed
        import repro.oneapi.runtime as runtime
        import repro.resilience as resilience
        for module, name in ((runtime, "PushRunner"),
                             (resilience, "ResilientPushRunner"),
                             (distributed, "ShardedPushRunner")):
            assert not hasattr(module, name)
            assert name not in module.__all__

    def test_engine_names_do_not_warn(self):
        from repro.oneapi.runtime import PushEngine
        ensemble = paper_ensemble(N, Layout.SOA, Precision.SINGLE)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            PushEngine(self._queue(), ensemble, "precalculated",
                       paper_wave(), paper_time_step())


class TestCliNormalizedFlags:
    def test_runner_commands_share_flag_set(self):
        from repro.cli import build_parser
        parser = build_parser()
        for command in ("table2", "table3", "shard", "faults", "push",
                        "trace"):
            if command == "trace":
                argv = [command, "table2", "--out", "/tmp/x.json"]
            else:
                argv = [command]
            args = parser.parse_args(
                argv + ["--layout", "SoA", "--precision", "float",
                        "--record"])
            assert args.layout == "SoA"
            assert args.precision == "float"
            assert args.record is True
            assert hasattr(args, "device") and hasattr(args, "group")

    def test_push_fusion_flags(self):
        from repro.cli import build_parser
        parser = build_parser()
        assert parser.parse_args(["push"]).fusion is None
        assert parser.parse_args(["push", "--fusion"]).fusion is True
        assert parser.parse_args(["push", "--no-fusion"]).fusion is False
