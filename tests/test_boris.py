"""Tests for the Boris pusher: scalar reference and vectorized kernels."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import (ELECTRON_MASS, ELEMENTARY_CHARGE,
                             SPEED_OF_LIGHT, cyclotron_frequency)
from repro.core import (BorisPusher, boris_push, boris_push_particle,
                        boris_rotation, advance, setup_leapfrog)
from repro.fields import NullField, UniformField
from repro.fp import FP3, Precision
from repro.particles import Layout, Particle, ParticleEnsemble, make_ensemble

MC = ELECTRON_MASS * SPEED_OF_LIGHT
Q = -ELEMENTARY_CHARGE

momentum_components = st.floats(min_value=-5.0, max_value=5.0,
                                allow_nan=False)
field_components = st.floats(min_value=-1e5, max_value=1e5,
                             allow_nan=False)


class TestBorisRotation:
    @settings(max_examples=60, deadline=None)
    @given(momentum_components, momentum_components, momentum_components,
           field_components, field_components, field_components,
           st.floats(min_value=1e-18, max_value=1e-12))
    def test_preserves_momentum_norm_exactly(self, ux, uy, uz,
                                             bx, by, bz, dt):
        # The paper: "p^2 is preserved exactly (independently of the
        # smallness of the rotation angle)".
        p = FP3(ux * MC, uy * MC, uz * MC)
        gamma = math.sqrt(1.0 + ux * ux + uy * uy + uz * uz)
        rotated = boris_rotation(p, FP3(bx, by, bz), gamma,
                                 ELECTRON_MASS, Q, dt)
        assert rotated.norm2() == pytest.approx(p.norm2(), rel=1e-12)

    def test_zero_field_is_identity(self):
        p = FP3(1.0 * MC, 2.0 * MC, 3.0 * MC)
        rotated = boris_rotation(p, FP3(), 2.0, ELECTRON_MASS, Q, 1e-15)
        assert rotated == p

    def test_small_angle_matches_cross_product(self):
        # For a tiny step, dp = (q dt / gamma m c) p x B.
        p = FP3(MC, 0.0, 0.0)
        b = FP3(0.0, 0.0, 1.0e4)
        gamma = math.sqrt(2.0)
        dt = 1e-20
        rotated = boris_rotation(p, b, gamma, ELECTRON_MASS, Q, dt)
        expected_dpy = Q * dt / (gamma * ELECTRON_MASS * SPEED_OF_LIGHT) \
            * (-p.x * b.z)
        assert rotated.y - p.y == pytest.approx(expected_dpy, rel=1e-6)


class TestScalarPush:
    def test_pure_electric_acceleration(self):
        # Constant E: dp = q E dt exactly (both half kicks).
        particle = Particle()
        e = FP3(1.0e5, 0.0, 0.0)
        dt = 1e-16
        boris_push_particle(particle, e, FP3(), dt, ELECTRON_MASS, Q)
        assert particle.momentum.x == pytest.approx(Q * 1.0e5 * dt, rel=1e-12)

    def test_free_streaming(self):
        mc = MC
        particle = Particle(momentum=FP3(mc, 0.0, 0.0),
                            gamma=math.sqrt(2.0))
        dt = 1e-15
        boris_push_particle(particle, FP3(), FP3(), dt, ELECTRON_MASS, Q)
        v = SPEED_OF_LIGHT / math.sqrt(2.0)
        assert particle.position.x == pytest.approx(v * dt, rel=1e-12)
        assert particle.momentum.x == mc

    def test_gamma_updated(self):
        particle = Particle()
        e = FP3(0.0, 1.0e7, 0.0)
        dt = 1e-14
        boris_push_particle(particle, e, FP3(), dt, ELECTRON_MASS, Q)
        expected = math.sqrt(1.0 + (Q * 1.0e7 * dt / MC) ** 2)
        assert particle.gamma == pytest.approx(expected, rel=1e-12)

    def test_works_on_proxies(self, small_ensemble):
        proxy = small_ensemble[0]
        before = proxy.momentum
        boris_push_particle(proxy, FP3(1e5, 0, 0), FP3(), 1e-16,
                            ELECTRON_MASS, Q)
        assert small_ensemble[0].momentum.x != before.x


class TestVectorizedAgainstScalar:
    def _random_state(self, rng, n=16):
        positions = rng.uniform(-1.0, 1.0, (n, 3))
        momenta = rng.normal(0.0, 0.5 * MC, (n, 3))
        return positions, momenta

    def test_matches_scalar_reference(self, layout, rng):
        positions, momenta = self._random_state(rng)
        ensemble = ParticleEnsemble.from_arrays(positions, momenta,
                                                layout=layout)
        e = (1.0e6, -2.0e6, 0.5e6)
        b = (0.0, 3.0e6, -1.0e6)
        dt = 1e-16
        fields = UniformField(e=e, b=b).evaluate(
            ensemble.component("x"), ensemble.component("y"),
            ensemble.component("z"), 0.0)
        boris_push(ensemble, fields, dt)

        for i in range(ensemble.size):
            particle = Particle(FP3.from_array(positions[i]),
                                FP3.from_array(momenta[i]))
            particle.update_gamma(ensemble.type_table)
            boris_push_particle(particle, FP3(*e), FP3(*b), dt,
                                ELECTRON_MASS, Q)
            proxy = ensemble[i]
            assert proxy.momentum.x == pytest.approx(particle.momentum.x,
                                                     rel=1e-12)
            assert proxy.position.y == pytest.approx(particle.position.y,
                                                     rel=1e-12)
            assert proxy.gamma == pytest.approx(particle.gamma, rel=1e-12)

    def test_layouts_produce_identical_results(self, rng):
        positions, momenta = self._random_state(rng)
        aos = ParticleEnsemble.from_arrays(positions, momenta,
                                           layout=Layout.AOS)
        soa = ParticleEnsemble.from_arrays(positions, momenta,
                                           layout=Layout.SOA)
        field = UniformField(e=(1e6, 0, 0), b=(0, 0, 2e6))
        for ensemble in (aos, soa):
            fields = field.evaluate(ensemble.component("x"),
                                    ensemble.component("y"),
                                    ensemble.component("z"), 0.0)
            boris_push(ensemble, fields, 1e-16)
        np.testing.assert_array_equal(aos.momenta(), soa.momenta())
        np.testing.assert_array_equal(aos.positions(), soa.positions())

    def test_runs_in_storage_precision(self):
        ensemble = make_ensemble(8, Layout.SOA, Precision.SINGLE)
        fields = NullField().evaluate(ensemble.component("x"),
                                      ensemble.component("y"),
                                      ensemble.component("z"), 0.0)
        boris_push(ensemble, fields, 1e-16)
        assert ensemble.component("px").dtype == np.float32

    def test_single_precision_approximates_double(self, rng):
        positions, momenta = self._random_state(rng)
        single = ParticleEnsemble.from_arrays(positions, momenta,
                                              precision=Precision.SINGLE)
        double = ParticleEnsemble.from_arrays(positions, momenta,
                                              precision=Precision.DOUBLE)
        field = UniformField(e=(1e6, 2e6, 0), b=(0, 1e6, 3e6))
        for ensemble in (single, double):
            fields = field.evaluate(ensemble.component("x"),
                                    ensemble.component("y"),
                                    ensemble.component("z"), 0.0)
            boris_push(ensemble, fields, 1e-16)
        np.testing.assert_allclose(single.momenta(), double.momenta(),
                                   rtol=1e-5)


class TestGyration:
    def test_larmor_orbit_closes(self):
        b0 = 1.0e4
        u = 0.5
        gamma = math.sqrt(1.0 + u * u)
        p0 = u * MC
        radius = p0 / (ELEMENTARY_CHARGE * b0 / SPEED_OF_LIGHT)
        omega = cyclotron_frequency(b0, gamma)
        field = UniformField(b=(0.0, 0.0, b0))
        ensemble = ParticleEnsemble.from_arrays(
            [[0.0, -radius, 0.0]], [[p0, 0.0, 0.0]])
        dt = 2.0 * math.pi / omega / 500.0
        setup_leapfrog(ensemble, field, dt)
        advance(ensemble, field, dt, 500, pusher=BorisPusher())
        end = ensemble.positions()[0]
        assert np.linalg.norm(end - [0.0, -radius, 0.0]) / radius < 1e-3

    def test_gyroradius_traced(self):
        b0 = 1.0e4
        p0 = 0.3 * MC
        radius = p0 / (ELEMENTARY_CHARGE * b0 / SPEED_OF_LIGHT)
        gamma = math.sqrt(1.09)
        omega = cyclotron_frequency(b0, gamma)
        field = UniformField(b=(0.0, 0.0, b0))
        ensemble = ParticleEnsemble.from_arrays(
            [[0.0, -radius, 0.0]], [[p0, 0.0, 0.0]])
        dt = 2.0 * math.pi / omega / 400.0
        setup_leapfrog(ensemble, field, dt)
        max_r = 0.0

        def track(step, time, ens):
            nonlocal max_r
            max_r = max(max_r, float(np.linalg.norm(ens.positions()[0])))

        advance(ensemble, field, dt, 400, callback=track)
        assert max_r == pytest.approx(radius, rel=2e-3)

    def test_energy_constant_in_pure_magnetic_field(self):
        field = UniformField(b=(1e4, 2e4, -0.5e4))
        ensemble = ParticleEnsemble.from_arrays(
            [[0, 0, 0]], [[0.7 * MC, -0.2 * MC, 0.4 * MC]])
        gamma0 = float(ensemble.component("gamma")[0])
        advance(ensemble, field, 1e-14, 1000)
        assert ensemble.component("gamma")[0] == pytest.approx(gamma0,
                                                               rel=1e-12)


class TestBorisPusherClass:
    def test_registered_name(self):
        assert BorisPusher.name == "boris"

    def test_push_delegates(self, small_ensemble):
        before = small_ensemble.positions().copy()
        fields = UniformField(e=(1e6, 0, 0)).evaluate(
            small_ensemble.component("x"), small_ensemble.component("y"),
            small_ensemble.component("z"), 0.0)
        BorisPusher().push(small_ensemble, fields, 1e-15)
        assert not np.allclose(small_ensemble.positions(), before)
