"""Chaos soak: many concurrent jobs under seeded fault storms.

The robustness contract of the service layer is binary: whatever the
fault plan does, every job must reach a *typed* terminal state —
COMPLETED with a digest, or FAILED with a recorded
:class:`~repro.errors.ReproError` subclass — and the scheduler must
return rather than hang (its progress watchdog turns livelock into
:class:`~repro.errors.ServiceError`, which would fail these tests
loudly).  Completed jobs must additionally be bit-exact versus a solo
fault-free run: fault injection may cost time, never physics.

Marked ``slow``: this module runs dozens of schedules.
"""

import pytest

from repro.api import RunConfig, run_push
from repro.service import DEFAULT_FLEET, JobQueue, JobSpec, JobState, \
    PushService

pytestmark = pytest.mark.slow

#: Per-job fault plans the soak cycles through (all named plans that
#: make sense per job, including the kitchen-sink "chaos" plan).
PLANS = (None, "transient", "default", "device-loss", "chaos")


def _soak_once(seed: int):
    service = PushService(fleet=DEFAULT_FLEET,
                          queue=JobQueue(capacity=32),
                          checkpoint_every=2)
    specs = []
    for i in range(10):
        spec = JobSpec(
            f"soak-{seed}-{i}",
            RunConfig(n_particles=300 + 50 * (i % 3), steps=4, warmup=1),
            tenant=("alice", "bob", "carol")[i % 3],
            priority=i % 4,
            arrival=0.0 if i < 6 else 1e-3 * (i - 5),
            fault_plan=PLANS[i % len(PLANS)],
            fault_seed=seed * 100 + i)
        specs.append(spec)
        service.submit(spec)
    return specs, service.run()


@pytest.mark.parametrize("seed", range(4))
def test_soak_every_job_ends_typed(seed):
    specs, report = _soak_once(seed)
    assert len(report.jobs) == len(specs)
    for spec in specs:
        job = report.jobs[spec.name]
        assert job.state in (JobState.COMPLETED, JobState.FAILED), \
            f"{spec.name} left non-terminal: {job.state}"
        if job.state == JobState.COMPLETED:
            assert job.digest, f"{spec.name} completed without a digest"
            assert job.steps == spec.config.warmup + spec.config.steps
        else:
            assert job.error_type, f"{spec.name} failed untyped"
            assert job.error
        # Accounting never goes negative, whatever the fault storm did.
        assert job.device_seconds >= 0.0
        assert job.queue_wait_seconds >= 0.0
        assert job.backoff_seconds >= 0.0
        events = [e.event for e in job.events]
        assert events[0] == "admit"
        assert events[-1] in ("complete", "fail")


def test_soak_completed_digests_stay_bit_exact():
    specs, report = _soak_once(seed=7)
    solo = {}
    for spec in specs:
        job = report.jobs[spec.name]
        if job.state != JobState.COMPLETED:
            continue
        key = spec.config.n_particles
        if key not in solo:
            solo[key] = run_push(RunConfig(
                n_particles=key, steps=4, warmup=1)).digest
        assert job.digest == solo[key], \
            f"{spec.name} diverged from the solo fault-free run"


def test_soak_is_deterministic():
    # Same specs + same seeds => identical schedule outcome, digest for
    # digest — the whole service runs on seeded RNG and a simulated
    # clock, so chaos is replayable.
    _, first = _soak_once(seed=2)
    _, second = _soak_once(seed=2)
    for name, job in first.jobs.items():
        twin = second.jobs[name]
        assert twin.state == job.state
        assert twin.digest == job.digest
        assert twin.error_type == job.error_type
        assert twin.device_seconds == pytest.approx(job.device_seconds)
    assert second.makespan == pytest.approx(first.makespan)
