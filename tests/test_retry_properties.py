"""Property tests for the retry/backoff machinery (hypothesis).

:class:`~repro.resilience.recovery.RetryPolicy` is load-bearing for
everything reproducible about recovery: the service scheduler, the
resilient runner and the sharded engine all charge its delays to the
simulated timeline, so two runs of the same schedule must see the same
delays — and monotone growth is what keeps a retry storm from
hammering a sick device harder over time.  These properties pin both,
jittered path included, across the whole constructor domain rather
than a few hand-picked examples.
"""

import itertools

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.resilience.recovery import RetryPolicy

#: How many delays to inspect per sequence — beyond any realistic
#: max_attempts, small enough to keep hypothesis fast.
PREFIX = 12

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=8),
    base_backoff=st.floats(min_value=0.0, max_value=10.0,
                           allow_nan=False, allow_infinity=False),
    multiplier=st.floats(min_value=1.0, max_value=8.0,
                         allow_nan=False, allow_infinity=False),
    jitter=st.floats(min_value=0.0, max_value=0.999,
                     allow_nan=False, allow_infinity=False),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)

#: Policies that always jitter — the randomised path must hold the
#: same contracts as the exact one.
jittered_policies = policies.filter(lambda p: p.jitter > 0.0)


def prefix(policy: RetryPolicy, n: int = PREFIX):
    return list(itertools.islice(policy.delay_sequence(), n))


@given(policy=policies)
@settings(max_examples=200)
def test_delay_sequence_is_deterministic_under_a_fixed_seed(policy):
    # Two fresh iterators from one policy, and an iterator from an
    # identically-built policy, all agree delay for delay (bit-equal:
    # the jitter stream is a pure function of the seed).
    first = prefix(policy)
    assert prefix(policy) == first
    clone = RetryPolicy(max_attempts=policy.max_attempts,
                        base_backoff=policy.base_backoff,
                        multiplier=policy.multiplier,
                        jitter=policy.jitter, seed=policy.seed)
    assert prefix(clone) == first


@given(policy=jittered_policies)
@settings(max_examples=200)
def test_jitter_stays_inside_its_envelope(policy):
    for attempt, delay in enumerate(prefix(policy)):
        nominal = policy.base_backoff * policy.multiplier ** attempt
        lo = nominal * (1.0 - policy.jitter)
        hi = nominal * (1.0 + policy.jitter)
        assert lo - 1e-12 <= delay <= hi + 1e-12
        assert delay >= 0.0                  # jitter < 1 keeps it so


@given(policy=policies)
@settings(max_examples=200)
def test_delays_monotone_when_growth_beats_jitter(policy):
    # Worst case adjacent pair: attempt k at the top of its jitter
    # band, attempt k+1 at the bottom.  Whenever growth covers that
    # (multiplier * (1 - jitter) >= 1 + jitter), the realised sequence
    # — jittered path included — must be non-decreasing.
    assume(policy.multiplier * (1.0 - policy.jitter)
           >= 1.0 + policy.jitter)
    delays = prefix(policy)
    assert all(later >= earlier - 1e-12
               for earlier, later in zip(delays, delays[1:]))


@given(policy=policies)
@settings(max_examples=100)
def test_zero_jitter_is_exact_exponential(policy):
    exact = RetryPolicy(max_attempts=policy.max_attempts,
                        base_backoff=policy.base_backoff,
                        multiplier=policy.multiplier,
                        jitter=0.0, seed=policy.seed)
    for attempt, delay in enumerate(prefix(exact)):
        assert delay == pytest.approx(
            exact.base_backoff * exact.multiplier ** attempt)


def test_distinct_seeds_give_distinct_jitter():
    a = prefix(RetryPolicy(jitter=0.1, seed=0))
    b = prefix(RetryPolicy(jitter=0.1, seed=1))
    assert a != b


@given(bad=st.integers(max_value=0))
@settings(max_examples=25)
def test_constructor_rejects_nonpositive_attempts(bad):
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=bad)


@given(bad=st.floats(min_value=1.0, max_value=10.0,
                     allow_nan=False, allow_infinity=False))
@settings(max_examples=25)
def test_constructor_rejects_out_of_range_jitter(bad):
    with pytest.raises(ConfigurationError):
        RetryPolicy(jitter=bad)
