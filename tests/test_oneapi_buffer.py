"""Tests for the buffer/accessor memory model."""

import numpy as np
import pytest

from repro.errors import MemoryModelError
from repro.oneapi import (AccessMode, Buffer, KernelSpec, MemoryStream,
                          Queue, StreamKind)
from repro.oneapi.device import DeviceType
from tests.test_oneapi_device import make_device


def spec(name="k"):
    return KernelSpec(name=name, streams=(
        MemoryStream(name="s", kind=StreamKind.READ, bytes_per_item=8),),
        flops_per_item=10)


class TestAccessMode:
    def test_read_flags(self):
        assert AccessMode.READ.reads and not AccessMode.READ.writes

    def test_write_flags(self):
        assert AccessMode.WRITE.writes and not AccessMode.WRITE.reads

    def test_read_write_flags(self):
        assert AccessMode.READ_WRITE.reads and AccessMode.READ_WRITE.writes

    def test_discard_write_flags(self):
        assert AccessMode.DISCARD_WRITE.writes
        assert not AccessMode.DISCARD_WRITE.reads


class TestCoherenceProtocol:
    def test_first_read_copies_to_device(self):
        buffer = Buffer(np.zeros(1000))
        accessor = buffer.get_access(AccessMode.READ, "gpu0")
        assert accessor.transfer_bytes == 8000
        assert buffer.transfers_to_device == 1

    def test_repeated_reads_use_cached_copy(self):
        buffer = Buffer(np.zeros(1000))
        buffer.get_access(AccessMode.READ, "gpu0")
        second = buffer.get_access(AccessMode.READ, "gpu0")
        assert second.transfer_bytes == 0
        assert buffer.transfers_to_device == 1

    def test_write_invalidates_host_and_other_devices(self):
        buffer = Buffer(np.zeros(1000))
        buffer.get_access(AccessMode.READ, "gpu0")
        buffer.get_access(AccessMode.READ_WRITE, "gpu1")
        assert not buffer.host_is_current
        # gpu0's copy is now stale: a read there moves data again.
        accessor = buffer.get_access(AccessMode.READ, "gpu0")
        assert accessor.transfer_bytes > 0

    def test_host_read_after_device_write_syncs_back(self):
        buffer = Buffer(np.zeros(1000))
        buffer.get_access(AccessMode.WRITE, "gpu0")
        assert not buffer.host_is_current
        buffer.host_data()
        assert buffer.host_is_current
        assert buffer.transfers_to_host == 1

    def test_discard_write_skips_upload(self):
        buffer = Buffer(np.zeros(1000))
        accessor = buffer.get_access(AccessMode.DISCARD_WRITE, "gpu0")
        assert accessor.transfer_bytes == 0
        assert not buffer.host_is_current

    def test_read_from_second_device_routes_through_host(self):
        buffer = Buffer(np.zeros(1000))
        buffer.get_access(AccessMode.READ_WRITE, "gpu0")
        accessor = buffer.get_access(AccessMode.READ, "gpu1")
        # write-back (8000) + upload (8000)
        assert accessor.transfer_bytes == 16000
        assert buffer.transfers_to_host == 1

    def test_validation(self):
        with pytest.raises(MemoryModelError):
            Buffer(np.zeros(0))
        buffer = Buffer(np.zeros(4))
        with pytest.raises(MemoryModelError):
            buffer.get_access("read", "gpu0")

    def test_accessor_data_is_the_host_array(self):
        host = np.arange(8.0)
        buffer = Buffer(host)
        accessor = buffer.get_access(AccessMode.READ_WRITE, "cpu")
        accessor.data[0] = 42.0
        assert host[0] == 42.0


class TestQueueSubmission:
    def _gpu_queue(self, transfer_bandwidth=10.0e9):
        gpu = make_device(device_type=DeviceType.GPU, numa_domains=1,
                          host_transfer_bandwidth=transfer_bandwidth)
        return Queue(gpu)

    def test_submit_charges_transfer_time(self):
        queue = self._gpu_queue(transfer_bandwidth=10.0e9)
        buffer = queue.create_buffer(np.zeros(1_000_000))
        accessor = queue.access(buffer, AccessMode.READ)
        record = queue.submit(1000, spec(), [accessor])
        assert record.timing.transfer_seconds == pytest.approx(
            8_000_000 / 10.0e9)
        assert record.timing.total_seconds > record.timing.transfer_seconds

    def test_warm_buffer_costs_nothing(self):
        queue = self._gpu_queue()
        buffer = queue.create_buffer(np.zeros(1_000_000))
        queue.submit(1000, spec(), [queue.access(buffer, AccessMode.READ)])
        record = queue.submit(1000, spec(),
                              [queue.access(buffer, AccessMode.READ)])
        assert record.timing.transfer_seconds == 0.0

    def test_cpu_transfers_effectively_free(self):
        queue = Queue(make_device())        # shared-DRAM default
        buffer = queue.create_buffer(np.zeros(1_000_000))
        record = queue.submit(1000, spec(),
                              [queue.access(buffer, AccessMode.READ)])
        assert record.timing.transfer_seconds < 1e-7

    def test_kernel_body_runs(self):
        queue = self._gpu_queue()
        buffer = queue.create_buffer(np.zeros(10))
        accessor = queue.access(buffer, AccessMode.READ_WRITE)

        def kernel():
            accessor.data[:] += 1.0

        queue.submit(10, spec(), [accessor], kernel=kernel)
        np.testing.assert_array_equal(buffer.host_data(), np.ones(10))

    def test_host_read_keeps_device_copy_valid(self):
        # A host *read* does not invalidate the device copy.
        queue = self._gpu_queue()
        buffer = queue.create_buffer(np.zeros(1000))
        queue.submit(10, spec(), [queue.access(buffer,
                                               AccessMode.READ_WRITE)])
        buffer.host_data()
        record = queue.submit(10, spec(),
                              [queue.access(buffer, AccessMode.READ)])
        assert record.timing.transfer_seconds == 0.0
        assert buffer.transfers_to_device == 1

    def test_ping_pong_accounting(self):
        # host write -> device -> host write -> device: both uploads
        # and the intermediate write-back are counted.
        queue = self._gpu_queue()
        buffer = queue.create_buffer(np.zeros(1000))
        queue.submit(10, spec(), [queue.access(buffer,
                                               AccessMode.READ_WRITE)])
        buffer.host_data(write=True)[:] = 1.0
        queue.submit(10, spec(), [queue.access(buffer,
                                               AccessMode.READ_WRITE)])
        assert buffer.transfers_to_device == 2
        assert buffer.transfers_to_host == 1
