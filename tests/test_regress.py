"""The declarative regression farm: filters, tolerances, migration, CLI.

Covers the PR 9 surface end to end:

* the single tolerance predicate — closed interval, exactly-at-bound
  passes, one epsilon over fails;
* ``--filter`` parsing and :class:`TestFilter` matching across
  suite/device/backend/tag axes;
* v0 → v1 baseline migration round-trips for both legacy shapes (the
  PR 3 trajectory files and the PR 8 flat portability dump), and the
  writer only ever emitting v1;
* the uniform performance stage (:func:`compare_cells`): at-bound,
  drifted, missing and new cells;
* ``repro bench`` exit codes: 0 green, 1 on injected drift (with the
  per-cell diff naming suite/device/backend/config), 2 on bad filters
  and unknown suites; the legacy subcommands warning as shims.
"""

import json
import math
import shutil
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ConfigurationError, ValidationError
from repro.regress import (Baseline, BaselineCell, RegressionTest,
                           SCHEMA_VERSION, TestFilter, append_snapshot,
                           backend_of_device, baseline_path, cell_label,
                           compare_cells, load_baseline, parse_filter,
                           relative_drift, run_regression,
                           within_tolerance, write_baseline)

REPO_BENCH = Path(__file__).resolve().parent.parent / "benchmarks"


# -- the single tolerance predicate ------------------------------------

def test_within_tolerance_closed_interval():
    # exactly at the bound passes (closed interval)...
    assert within_tolerance(110.0, 100.0, 0.1)
    assert within_tolerance(90.0, 100.0, 0.1)
    # ...one epsilon over fails
    assert not within_tolerance(math.nextafter(110.0, math.inf),
                                100.0, 0.1)
    assert not within_tolerance(math.nextafter(90.0, -math.inf),
                                100.0, 0.1)
    # zero tolerance means exact reproduction
    assert within_tolerance(1.5, 1.5, 0.0)
    assert not within_tolerance(math.nextafter(1.5, 2.0), 1.5, 0.0)


def test_within_tolerance_rejects_negative_tolerance():
    with pytest.raises(ConfigurationError):
        within_tolerance(1.0, 1.0, -0.1)


def test_relative_drift_signed_and_zero_reference():
    assert relative_drift(110.0, 100.0) == pytest.approx(0.10)
    assert relative_drift(90.0, 100.0) == pytest.approx(-0.10)
    assert relative_drift(0.0, 0.0) == 0.0
    assert relative_drift(1.0, 0.0) == math.inf


# -- filters -----------------------------------------------------------

class _Fake(RegressionTest):
    suite = "fake"
    tags = frozenset({"smoke", "paper"})
    devices = ("cpu", "iris-xe-max")
    backends = ("oneapi",)


def test_parse_filter_buckets_and_terms():
    f = parse_filter(["suite=fake,device=cpu", "backend=oneapi",
                      "tag=smoke", "paper"])
    assert f.suites == ("fake",)
    assert f.devices == ("cpu",)
    assert f.backends == ("oneapi",)
    assert f.tags == ("smoke",)
    assert f.terms == ("paper",)
    assert parse_filter(None) == TestFilter()


def test_parse_filter_rejects_bad_terms():
    with pytest.raises(ConfigurationError):
        parse_filter(["bogus=x"])
    with pytest.raises(ConfigurationError):
        parse_filter(["suite="])


def test_filter_matching_axes():
    test = _Fake()
    assert TestFilter().matches(test)
    assert TestFilter(suites=("fake",)).matches(test)
    assert not TestFilter(suites=("other",)).matches(test)
    assert TestFilter(devices=("cpu",)).matches(test)
    assert not TestFilter(devices=("cuda:gpu0",)).matches(test)
    assert TestFilter(backends=("oneapi",)).matches(test)
    assert not TestFilter(backends=("cuda",)).matches(test)
    assert TestFilter(tags=("smoke",)).matches(test)
    assert not TestFilter(tags=("manual",)).matches(test)
    # bare terms match the suite name OR a tag, and AND together
    assert TestFilter(terms=("fake",)).matches(test)
    assert TestFilter(terms=("smoke", "paper")).matches(test)
    assert not TestFilter(terms=("smoke", "manual")).matches(test)


def test_backend_inference():
    assert backend_of_device("cuda:gpu0") == "cuda"
    assert backend_of_device("iris-xe-max") == "oneapi"
    assert backend_of_device("2x iris-xe-max") == "oneapi"


# -- v0 -> v1 migration ------------------------------------------------

def test_trajectory_v0_round_trip(tmp_path):
    v0 = {"scenario": "shard",
          "snapshots": [{"git_sha": "abc123", "date": "2026-01-01",
                         "n_particles": 1000,
                         "cells": [{"config": "sharded/even",
                                    "device": "2x iris-xe-max",
                                    "layout": "SoA",
                                    "nsps": 0.5, "n_devices": 2}]}]}
    baseline_path("shard", tmp_path).write_text(json.dumps(v0))
    baseline = load_baseline("shard", tmp_path)
    cell = baseline.latest.cells[0]
    assert cell.keys["backend"] == "oneapi"       # inferred
    assert cell.keys["suite"] == "shard"
    assert cell.metrics == {"nsps": 0.5, "n_devices": 2.0}
    # write -> v1 on disk, identical in-memory content after reload
    write_baseline(baseline, tmp_path)
    document = json.loads(baseline_path("shard", tmp_path).read_text())
    assert document["schema_version"] == SCHEMA_VERSION
    assert document["suite"] == "shard"
    reloaded = load_baseline("shard", tmp_path)
    assert reloaded.latest.git_sha == "abc123"
    assert reloaded.latest.cells[0].identity == cell.identity
    assert reloaded.latest.cells[0].metrics == cell.metrics


def test_portability_v0_round_trip(tmp_path):
    from repro.backends.portability import PP_DRIFT_TOLERANCE
    v0 = {"pp": 0.9, "n_particles": 100, "steps": 4, "warmup": 2,
          "portable_config": {"layout": "SoA"},
          "devices": [{"device": "cpu", "backend": "oneapi",
                       "best_nsps": 1.0, "portable_nsps": 1.1,
                       "efficiency": 0.9, "best_label": "x"},
                      {"device": "cuda:gpu0", "backend": "cuda",
                       "best_nsps": 0.2, "portable_nsps": 0.2,
                       "efficiency": 1.0, "best_label": "y"}]}
    baseline_path("portability", tmp_path).write_text(json.dumps(v0))
    baseline = load_baseline("portability", tmp_path)
    cells = baseline.latest.cells
    pp = [c for c in cells if c.keys["config"] == "pp"]
    assert len(pp) == 1 and pp[0].metrics["pp"] == 0.9
    assert pp[0].tolerance == PP_DRIFT_TOLERANCE
    assert len([c for c in cells
                if c.keys["config"] == "efficiency"]) == 2
    assert baseline.latest.params == {"steps": 4, "warmup": 2}
    # the PortabilityReport view survives the v1 round trip too
    from repro.backends import portability as p
    write_baseline(baseline, tmp_path)
    report = p.load_baseline(baseline_path("portability", tmp_path))
    assert report.pp == 0.9
    assert {r.device for r in report.devices} == {"cpu", "cuda:gpu0"}
    assert report.steps == 4 and report.n_particles == 100


def test_writer_only_emits_v1(tmp_path):
    cell = {"suite": "demo", "backend": "oneapi", "device": "cpu",
            "config": "default", "metrics": {"nsps": 1.0},
            "tolerance": 0.1}
    append_snapshot("demo", [cell], 500, directory=tmp_path)
    document = json.loads(baseline_path("demo", tmp_path).read_text())
    assert document["schema_version"] == SCHEMA_VERSION
    # appending to a v0 file migrates its whole history first
    v0 = {"scenario": "old", "snapshots": [
        {"git_sha": "aaa", "date": "", "n_particles": 5,
         "cells": [{"config": "c", "device": "cpu", "nsps": 2.0}]}]}
    baseline_path("old", tmp_path).write_text(json.dumps(v0))
    append_snapshot("old", [dict(cell, suite="old")], 500,
                    directory=tmp_path)
    document = json.loads(baseline_path("old", tmp_path).read_text())
    assert document["schema_version"] == SCHEMA_VERSION
    assert len(document["snapshots"]) == 2
    assert document["snapshots"][0]["git_sha"] == "aaa"


def test_corrupt_and_mismatched_baselines_raise(tmp_path):
    assert load_baseline("absent", tmp_path) is None
    baseline_path("bad", tmp_path).write_text("{not json")
    with pytest.raises(ValidationError):
        load_baseline("bad", tmp_path)
    baseline_path("liar", tmp_path).write_text(
        json.dumps({"schema_version": 1, "suite": "other",
                    "snapshots": []}))
    with pytest.raises(ValidationError):
        load_baseline("liar", tmp_path)
    baseline_path("future", tmp_path).write_text(
        json.dumps({"schema_version": 99, "suite": "future",
                    "snapshots": []}))
    with pytest.raises(ValidationError):
        load_baseline("future", tmp_path)
    with pytest.raises(ConfigurationError):
        baseline_path("../escape")


# -- the uniform performance stage -------------------------------------

def _cell(nsps, config="c", device="cpu", **keys):
    data = {"suite": "fake", "backend": "oneapi", "device": device,
            "config": config, "metrics": {"nsps": nsps},
            "tolerance": 0.1}
    data.update(keys)
    return data


def _ref(nsps, config="c", device="cpu", tolerance=0.1):
    return BaselineCell(
        keys={"suite": "fake", "backend": "oneapi", "device": device,
              "config": config},
        metrics={"nsps": nsps}, tolerance=tolerance)


def test_compare_cells_at_bound_and_over():
    test = _Fake()
    at_bound = compare_cells(test, [_cell(110.0)], [_ref(100.0)])
    assert [c.status for c in at_bound] == ["ok"]
    over = compare_cells(
        test, [_cell(math.nextafter(110.0, math.inf))], [_ref(100.0)])
    assert [c.status for c in over] == ["drift"]
    assert over[0].drift == pytest.approx(0.1)
    assert "fake/oneapi:cpu/c" in over[0].label


def test_compare_cells_missing_and_new():
    test = _Fake()
    results = compare_cells(
        test,
        [_cell(1.0, config="kept"), _cell(2.0, config="added")],
        [_ref(1.0, config="kept"), _ref(3.0, config="vanished")])
    by_status = {c.status: c for c in results}
    assert by_status["ok"].keys["config"] == "kept"
    assert by_status["missing"].keys["config"] == "vanished"
    assert not by_status["missing"].passed
    assert by_status["new"].keys["config"] == "added"
    assert by_status["new"].passed


def test_baseline_cell_requires_identity_and_metrics():
    with pytest.raises(ValidationError):
        BaselineCell.from_dict({"device": "cpu", "config": "c",
                                "metrics": {"nsps": 1.0}})
    with pytest.raises(ValidationError):
        BaselineCell.from_dict({"backend": "oneapi", "device": "cpu",
                                "config": "c"})
    assert "layout=" not in cell_label(
        {"suite": "s", "backend": "b", "device": "d", "config": "c",
         "layout": "SoA"})


# -- the matrix runner + CLI exit codes --------------------------------

@pytest.fixture()
def shard_dir(tmp_path):
    """A baseline directory holding only the committed shard file."""
    shutil.copy(REPO_BENCH / "BENCH_shard.json",
                tmp_path / "BENCH_shard.json")
    return tmp_path


def test_regress_green_on_committed_baseline(shard_dir):
    report = run_regression(directory=shard_dir, suites=["shard"])
    assert report.passed
    assert report.results[0].n_compared == 1


def test_regress_fails_on_injected_drift(shard_dir, capsys):
    path = shard_dir / "BENCH_shard.json"
    document = json.loads(path.read_text())
    cell = document["snapshots"][-1]["cells"][0]
    cell["metrics"]["nsps"] *= 1.5
    path.write_text(json.dumps(document))
    with pytest.raises(SystemExit) as exc:
        main(["bench", "shard", "--regress",
              "--record-dir", str(shard_dir)])
    assert exc.value.code == 1
    out = capsys.readouterr().out
    # the per-cell diff names suite, backend, device and config
    assert "shard/oneapi:2x iris-xe-max/sharded/even" in out
    assert "drift" in out and "±10%" in out


def test_regress_fails_on_missing_baseline(tmp_path):
    report = run_regression(directory=tmp_path, suites=["fusion"])
    assert not report.passed
    assert "no committed baseline" in report.results[0].error


def test_measure_suite_is_listed_but_never_regressed():
    report = run_regression(suites=["measure"])
    assert report.passed
    assert report.results[0].skipped is not None


def test_cli_bench_list_and_errors(capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    for suite in ("table2", "fusion", "portability", "measure"):
        assert suite in out
    # bad filter expression -> usage error (exit 2)
    assert main(["bench", "--regress", "--filter", "bogus=x"]) == 2
    assert "bad filter term" in capsys.readouterr().err
    # unknown suite -> exit 2
    assert main(["bench", "nope"]) == 2
    assert "unknown bench suite" in capsys.readouterr().err
    # a suite name is required outside --list/--regress
    assert main(["bench"]) == 2
    # --record and --regress are exclusive
    assert main(["bench", "shard", "--record", "--regress"]) == 2


def test_cli_bench_record_then_regress(tmp_path, capsys):
    assert main(["bench", "shard", "--record",
                 "--record-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "recorded snapshot" in out
    assert main(["bench", "shard", "--regress",
                 "--record-dir", str(tmp_path)]) == 0
    assert "PASS" in capsys.readouterr().out


def test_cli_legacy_shims_warn_and_keep_output(capsys):
    with pytest.warns(DeprecationWarning, match="repro threads"):
        assert main(["--particles", "100000", "threads"]) == 0
    captured = capsys.readouterr()
    assert "Hyperthreading sweep" in captured.out
    assert "deprecated" in captured.err
    with pytest.warns(DeprecationWarning, match="repro first-iter"):
        assert main(["--particles", "100000", "first-iter"]) == 0
    assert "first iteration / steady iteration" in \
        capsys.readouterr().out


def test_cli_bench_smoke_filter_is_green(capsys):
    """The CI smoke job's exact invocation, from the repo checkout."""
    assert main(["bench", "--regress", "--filter", "smoke",
                 "--record-dir", str(REPO_BENCH)]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out and "portability" in out


@pytest.mark.slow
def test_full_matrix_regresses_green():
    """Every declared suite (paper tables included) reproduces its
    committed baseline and sanity bands — the nightly CI job."""
    report = run_regression(directory=REPO_BENCH)
    assert report.passed, "\n" + report.render()
    compared = sum(r.n_compared for r in report.results)
    assert compared >= 40       # 24 + 12 + shard + fusion + pp
