"""Tests for the backend layer: registry, CUDA semantics, isolation.

Covers the contract of :mod:`repro.backends` — spec parsing and typed
errors, the simulated CUDA backend's stream/graph/occupancy semantics,
cross-backend program-cache isolation, and the differential harness's
cross-backend bit-exactness claim.
"""

from types import SimpleNamespace

import pytest

from repro.backends import (BACKEND_NAMES, all_device_specs,
                            canonical_device_spec, descriptor_for,
                            get_backend, parse_device_spec, queue_for,
                            resolve_device)
from repro.backends.cuda import (CONTEXT_INIT_SECONDS, CUDA_BLOCK_SIZE,
                                 GRAPH_CAPTURE_LAUNCHES,
                                 GRAPH_REPLAY_DISCOUNT, WARP_SIZE,
                                 CudaCostModel, CudaStream)
from repro.bench.scenarios import paper_ensemble, paper_time_step, paper_wave
from repro.errors import ConfigurationError, ReproError
from repro.fp import Precision
from repro.particles.ensemble import Layout

N = 256


# -- registry and spec parsing ---------------------------------------------

class TestRegistry:
    def test_backend_names(self):
        assert BACKEND_NAMES == ("oneapi", "cuda")

    def test_bare_key_defaults_to_oneapi(self):
        assert parse_device_spec("cpu") == ("oneapi", "cpu")
        assert parse_device_spec("Iris-Xe-Max") == ("oneapi",
                                                    "iris-xe-max")

    def test_qualified_spec_parses(self):
        assert parse_device_spec("cuda:gpu0") == ("cuda", "gpu0")
        assert parse_device_spec("oneapi:cpu") == ("oneapi", "cpu")

    def test_unknown_backend_is_typed_error(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            parse_device_spec("rocm:gfx90a")
        with pytest.raises(ReproError):
            parse_device_spec("rocm:gfx90a")

    def test_backend_without_device_is_error(self):
        with pytest.raises(ConfigurationError, match="no device"):
            parse_device_spec("cuda:")

    def test_empty_spec_is_error(self):
        with pytest.raises(ConfigurationError):
            parse_device_spec("  ")

    def test_unknown_device_key_is_typed_error(self):
        with pytest.raises(ConfigurationError, match="unknown cuda"):
            resolve_device("cuda:gpu9")

    def test_get_backend_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            get_backend("metal")

    def test_canonical_spelling(self):
        assert canonical_device_spec("oneapi", "cpu") == "cpu"
        assert canonical_device_spec("cuda", "gpu0") == "cuda:gpu0"

    def test_all_device_specs_spans_backends(self):
        specs = all_device_specs()
        assert "cpu" in specs and "iris-xe-max" in specs
        assert "cuda:gpu0" in specs and "cuda:gpu1" in specs
        assert specs == all_device_specs()  # stable ordering

    def test_all_device_specs_filters(self):
        assert all(s.startswith("cuda:")
                   for s in all_device_specs(backend="cuda"))
        with pytest.raises(ConfigurationError):
            all_device_specs(backend="rocm")

    def test_descriptors_carry_backend_field(self):
        assert descriptor_for("cpu").backend == "oneapi"
        assert descriptor_for("cuda:gpu0").backend == "cuda"


# -- CUDA stream semantics -------------------------------------------------

class TestCudaStream:
    def test_queue_for_builds_a_stream(self):
        queue = queue_for("cuda:gpu0")
        assert isinstance(queue, CudaStream)
        assert queue.config.in_order is True

    def test_out_of_order_request_is_demoted(self):
        queue = queue_for("cuda:gpu1", out_of_order=True)
        assert queue.config.in_order is True

    def test_default_scheduler_uses_block_size(self):
        queue = queue_for("cuda:gpu0")
        assert queue.config.scheduler.workgroup_size == CUDA_BLOCK_SIZE

    def test_oneapi_queue_keeps_out_of_order(self):
        queue = queue_for("iris-xe-max", out_of_order=True)
        assert queue.config.in_order is False


# -- CUDA cost model -------------------------------------------------------

class TestCudaCostModel:
    def _model(self):
        return CudaCostModel(descriptor_for("cuda:gpu0"))

    def test_occupancy_is_warp_quantised(self):
        model = self._model()
        assert model._occupancy_items(1.0) == WARP_SIZE
        assert model._occupancy_items(32.0) == 32.0
        assert model._occupancy_items(33.0) == 64.0
        assert model._occupancy_items(0.0) == 0.0

    def test_steady_overhead_is_graph_replay(self):
        model = self._model()
        assert model._steady_launch_overhead() == pytest.approx(
            model.device.kernel_launch_overhead * GRAPH_REPLAY_DISCOUNT)

    def test_capture_then_replay(self):
        model = self._model()
        spec = SimpleNamespace(name="boris")
        full = model.device.kernel_launch_overhead
        first = model._measured_launch_overhead(spec)
        # the very first launch also pays context initialisation
        assert first == pytest.approx(full + CONTEXT_INIT_SECONDS)
        for _ in range(GRAPH_CAPTURE_LAUNCHES - 1):
            assert model._measured_launch_overhead(spec) \
                == pytest.approx(full)
        assert model.is_graph_replaying("boris")
        assert model._measured_launch_overhead(spec) == pytest.approx(
            full * GRAPH_REPLAY_DISCOUNT)
        assert model.launches_of("boris") == GRAPH_CAPTURE_LAUNCHES + 1

    def test_context_init_charged_once_across_kernels(self):
        model = self._model()
        full = model.device.kernel_launch_overhead
        model._measured_launch_overhead(SimpleNamespace(name="a"))
        assert model._measured_launch_overhead(
            SimpleNamespace(name="b")) == pytest.approx(full)

    def test_fresh_stream_gets_fresh_context(self):
        a = queue_for("cuda:gpu0")
        b = queue_for("cuda:gpu0")
        assert a.cost_model is not b.cost_model


# -- cross-backend program-cache isolation (satellite) ---------------------

class TestProgramCacheIsolation:
    def test_same_chain_distinct_keys_per_backend(self):
        from repro.oneapi.programcache import ProgramCache, ProgramKey
        oneapi_key = ProgramKey(chain=("boris",), device="modelX",
                                layout="SoA", precision="float",
                                backend="oneapi")
        cuda_key = ProgramKey(chain=("boris",), device="modelX",
                              layout="SoA", precision="float",
                              backend="cuda")
        assert oneapi_key != cuda_key
        cache = ProgramCache()
        cache.build(oneapi_key, 0.2)
        assert cache.is_warm(oneapi_key)
        assert not cache.is_warm(cuda_key)

    def test_profile_warmth_is_pinned_per_backend(self):
        from repro.oneapi.programcache import ProgramCache, ProgramKey
        cache = ProgramCache()
        cache.build(ProgramKey(chain=("boris",), device="modelX",
                               layout="SoA", precision="float",
                               backend="cuda"), 0.5)
        assert cache.is_profile_warm("modelX", "SoA", "float")
        assert cache.is_profile_warm("modelX", "SoA", "float",
                                     backend="cuda")
        assert not cache.is_profile_warm("modelX", "SoA", "float",
                                         backend="oneapi")

    def test_shared_cache_runs_keep_backends_apart(self):
        from repro.api import RunConfig, run_push
        from repro.oneapi.programcache import ProgramCache
        cache = ProgramCache()
        for spec in ("iris-xe-max", "cuda:gpu0"):
            run_push(RunConfig(device=spec, n_particles=N, steps=2,
                               warmup=1, program_cache=cache))
        backends = {row[0] for row in cache.warm_profiles()}
        assert backends == {"oneapi", "cuda"}
        # both backends paid their own JIT: two misses, zero sharing
        assert cache.stats.misses == 2


# -- engines and the facade across backends --------------------------------

class TestCrossBackendExecution:
    def test_run_push_executes_cuda_device(self):
        from repro.api import RunConfig, run_push
        report = run_push(RunConfig(device="cuda:gpu0", n_particles=N,
                                    steps=2, warmup=1))
        assert report.device == "cuda:gpu0"
        assert report.nsps > 0.0

    def test_cuda_digest_matches_oneapi(self):
        from repro.api import RunConfig, run_push
        digests = {run_push(RunConfig(device=spec, n_particles=N,
                                      steps=2, warmup=1)).digest
                   for spec in ("iris-xe-max", "cuda:gpu0", "cpu")}
        assert len(digests) == 1

    def test_auto_selects_and_executes_cuda(self):
        from repro.api import RunConfig, run_push
        report = run_push(RunConfig(config="auto", device="cuda:gpu0",
                                    n_particles=2_000, steps=3,
                                    warmup=1))
        assert report.device == "cuda:gpu0"
        assert report.predicted_nsps is not None
        assert report.tuning is not None

    def test_auto_device_axis_spans_backends(self):
        from repro.api import RunConfig, run_push
        specs = ("cpu", "cuda:gpu0", "iris-xe-max")
        report = run_push(RunConfig(config="auto", tune_devices=specs,
                                    n_particles=2_000, steps=3,
                                    warmup=1))
        assert report.device in specs
        labels = [p.candidate.label for p in report.tuning.ranked]
        assert any("cuda:gpu0" in label for label in labels)

    def test_tune_devices_requires_auto(self):
        from repro.api import RunConfig
        with pytest.raises(ConfigurationError):
            RunConfig(tune_devices=("cpu", "cuda:gpu0")).validate()

    def test_tune_devices_validates_specs(self):
        from repro.api import RunConfig
        with pytest.raises(ConfigurationError, match="unknown backend"):
            RunConfig(config="auto",
                      tune_devices=("rocm:gfx90a",)).validate()

    def test_resilient_ladder_spans_backends(self):
        from repro.resilience import ResilientPushEngine
        ensemble = paper_ensemble(N, Layout.SOA, Precision.SINGLE)
        engine = ResilientPushEngine(ensemble, "precalculated",
                                     paper_wave(), paper_time_step(),
                                     devices=("cuda:gpu0", "cpu"))
        records, report = engine.run(2)
        assert report.completed
        assert report.final_device == "cuda:gpu0"

    def test_group_spec_accepts_qualified_keys(self):
        from repro.distributed import DeviceGroup
        from repro.distributed.group import parse_group_spec
        keys = parse_group_spec("2x cuda:gpu0, cpu")
        assert keys == ["cuda:gpu0", "cuda:gpu0", "cpu"]
        group = DeviceGroup.from_spec("cuda:gpu0, cpu")
        assert group.members[0].host_link.name == "PCIe 3.0 x16"
        assert group.members[0].queue.config.in_order is True
        assert group.members[1].queue.config.in_order is False

    def test_differential_passes_with_cuda_in_matrix(self):
        from repro.validation import run_differential
        report = run_differential(
            n=64, steps=2, engines=("single",),
            layouts=(Layout.SOA,), precisions=(Precision.SINGLE,),
            fusion_modes=(None, True),
            devices=("iris-xe-max", "cuda:gpu0", "cuda:gpu1"))
        assert report.all_passed
        labels = {result.engine for result in report.results}
        assert "single[cuda:gpu0]" in labels


# -- CLI (satellite) -------------------------------------------------------

class TestBackendCli:
    def test_devices_lists_backend_column(self, capsys):
        from repro.cli import main
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "backend" in out
        assert "cuda:gpu0" in out and "iris-xe-max" in out

    def test_devices_backend_filter(self, capsys):
        from repro.cli import main
        assert main(["devices", "--backend", "cuda"]) == 0
        out = capsys.readouterr().out
        assert "cuda:gpu1" in out
        assert "iris-xe-max" not in out

    def test_unknown_backend_exits_2(self, capsys):
        from repro.cli import main
        assert main(["devices", "--backend", "rocm"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_unknown_device_spec_exits_2(self, capsys):
        from repro.cli import main
        code = main(["push", "--device", "rocm:gfx90a",
                     "--push-particles", "64", "--steps", "1"])
        assert code == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_push_runs_on_cuda_spec(self, capsys):
        from repro.cli import main
        code = main(["push", "--device", "cuda:gpu1",
                     "--push-particles", "256", "--steps", "2",
                     "--warmup", "1"])
        assert code == 0
        assert "cuda:gpu1" in capsys.readouterr().out
