"""Tests for PIC diagnostics."""

import math

import numpy as np
import pytest

from repro.constants import (ELECTRON_MASS, ELEMENTARY_CHARGE,
                             SPEED_OF_LIGHT)
from repro.errors import ConfigurationError
from repro.fields import UniformField, YeeGrid
from repro.particles import ParticleEnsemble
from repro.pic import (EnergyHistory, field_energy, kinetic_energy,
                       plasma_frequency, total_momentum)


class TestEnergies:
    def test_field_energy_uniform(self):
        grid = YeeGrid((0, 0, 0), (1, 1, 1), (2, 2, 2))
        grid.fill_from_source(UniformField(b=(2.0, 0, 0)), 0.0)
        expected = 4.0 / (8.0 * math.pi) * 8.0
        assert field_energy(grid) == pytest.approx(expected)

    def test_kinetic_energy_weighted(self):
        mc = ELECTRON_MASS * SPEED_OF_LIGHT
        ensemble = ParticleEnsemble.from_arrays(
            np.zeros((2, 3)), [[mc, 0, 0], [0, 0, 0]],
            weights=[3.0, 10.0])
        expected = 3.0 * (math.sqrt(2.0) - 1.0) * ELECTRON_MASS \
            * SPEED_OF_LIGHT ** 2
        assert kinetic_energy(ensemble) == pytest.approx(expected)

    def test_total_momentum_weighted(self):
        ensemble = ParticleEnsemble.from_arrays(
            np.zeros((2, 3)), [[1.0e-18, 0, 0], [-2.0e-18, 0, 0]],
            weights=[2.0, 1.0])
        np.testing.assert_allclose(total_momentum(ensemble),
                                   [0.0, 0.0, 0.0], atol=1e-30)


class TestPlasmaFrequency:
    def test_known_value(self):
        # n = 1e18 cm^-3 electrons: omega_p ~ 5.64e13 1/s.
        omega = plasma_frequency(1.0e18, ELECTRON_MASS, ELEMENTARY_CHARGE)
        assert omega == pytest.approx(5.64e13, rel=0.01)

    def test_scales_as_sqrt_density(self):
        one = plasma_frequency(1.0e18, ELECTRON_MASS, ELEMENTARY_CHARGE)
        four = plasma_frequency(4.0e18, ELECTRON_MASS, ELEMENTARY_CHARGE)
        assert four == pytest.approx(2.0 * one)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            plasma_frequency(-1.0, ELECTRON_MASS, ELEMENTARY_CHARGE)
        with pytest.raises(ConfigurationError):
            plasma_frequency(1.0e18, 0.0, ELEMENTARY_CHARGE)


class TestEnergyHistory:
    def _synthetic_history(self, omega, steps=256, dt=1.0e-15):
        history = EnergyHistory()
        grid = YeeGrid((0, 0, 0), (1, 1, 1), (2, 2, 2))
        ensemble = ParticleEnsemble.from_arrays([[0, 0, 0]], [[0, 0, 0]])
        for n in range(steps):
            t = n * dt
            grid.component("ex")[:] = math.sin(omega * t)
            history.record(t, grid, [ensemble])
        return history

    def test_dominant_frequency_recovers_signal(self):
        # Pick a frequency aligned with an FFT bin: 8 cycles of the
        # energy (which oscillates at 2 omega) over 256 samples.
        steps, dt = 256, 1.0e-15
        omega = 2.0 * math.pi * 4.0 / (steps * dt)
        history = self._synthetic_history(omega, steps=steps, dt=dt)
        assert history.dominant_frequency() == pytest.approx(2.0 * omega,
                                                             rel=0.02)

    def test_dominant_frequency_custom_signal(self):
        steps, dt = 256, 1.0e-15
        omega = 2.0 * math.pi * 12.0 / (steps * dt)
        history = self._synthetic_history(omega, steps=steps, dt=dt)
        signal = np.sin(omega * np.asarray(history.times))
        assert history.dominant_frequency(signal) == pytest.approx(
            omega, rel=0.02)

    def test_relative_drift_constant_total(self):
        history = EnergyHistory()
        grid = YeeGrid((0, 0, 0), (1, 1, 1), (2, 2, 2))
        grid.component("ex")[:] = 1.0
        ensemble = ParticleEnsemble.from_arrays([[0, 0, 0]], [[0, 0, 0]])
        for t in range(5):
            history.record(float(t), grid, [ensemble])
        assert history.relative_drift() == pytest.approx(0.0, abs=1e-15)

    def test_requires_samples(self):
        with pytest.raises(ConfigurationError):
            EnergyHistory().relative_drift()
        with pytest.raises(ConfigurationError):
            EnergyHistory().dominant_frequency()
