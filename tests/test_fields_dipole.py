"""Tests for the m-dipole standing wave (eqs. 14-15 of the paper)."""

import math

import numpy as np
import pytest
from scipy.special import spherical_jn

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError
from repro.fields import MDipoleWave, dipole_amplitude, dipole_f1, \
    dipole_f2, dipole_f3
from tests.test_fields_waves import _numerical_maxwell_residual


class TestRadialFunctions:
    def test_f1_is_spherical_bessel_j1(self):
        x = np.linspace(0.001, 20.0, 200)
        np.testing.assert_allclose(dipole_f1(x), spherical_jn(1, x),
                                   rtol=1e-10, atol=1e-14)

    def test_f2_is_spherical_bessel_j2(self):
        x = np.linspace(0.001, 20.0, 200)
        np.testing.assert_allclose(dipole_f2(x), spherical_jn(2, x),
                                   rtol=1e-10, atol=1e-14)

    def test_f3_identity(self):
        # f3 = j0 - j1/x.
        x = np.linspace(0.05, 20.0, 200)
        expected = spherical_jn(0, x) - spherical_jn(1, x) / x
        np.testing.assert_allclose(dipole_f3(x), expected,
                                   rtol=1e-10, atol=1e-14)

    def test_series_matches_closed_form_below_threshold(self):
        # Just below the series switch (|x| < 1e-2) the series value
        # must agree with scipy's well-conditioned evaluation.
        x = np.array([0.009, 0.005, 0.001])
        for order, f in ((1, dipole_f1), (2, dipole_f2)):
            np.testing.assert_allclose(f(x), spherical_jn(order, x),
                                       rtol=1e-10)
        expected = spherical_jn(0, x) - spherical_jn(1, x) / x
        np.testing.assert_allclose(dipole_f3(x), expected, rtol=1e-10)

    def test_values_at_origin(self):
        assert dipole_f1(np.array([0.0]))[0] == 0.0
        assert dipole_f2(np.array([0.0]))[0] == 0.0
        assert dipole_f3(np.array([0.0]))[0] == pytest.approx(2.0 / 3.0)

    def test_negative_arguments_by_parity(self):
        # j1 and the combination f3 are odd/even as expected.
        x = np.array([0.005])
        assert dipole_f1(-x)[0] == pytest.approx(-dipole_f1(x)[0])
        assert dipole_f3(-x)[0] == pytest.approx(dipole_f3(x)[0])


class TestAmplitude:
    def test_formula(self):
        # A0 = k sqrt(3 P / c).
        power, omega = 1.0e21, 2.1e15
        k = omega / SPEED_OF_LIGHT
        assert dipole_amplitude(power, omega) == pytest.approx(
            k * math.sqrt(3.0 * power / SPEED_OF_LIGHT))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            dipole_amplitude(-1.0, 1.0e15)
        with pytest.raises(ConfigurationError):
            dipole_amplitude(1.0e21, 0.0)

    def test_paper_defaults(self):
        wave = MDipoleWave()
        assert wave.power == pytest.approx(1.0e21)      # 0.1 PW in erg/s
        assert wave.omega == pytest.approx(2.1e15)
        assert wave.wavelength == pytest.approx(0.9e-4, rel=0.005)


class TestFieldStructure:
    def test_ez_identically_zero(self):
        wave = MDipoleWave()
        rng = np.random.default_rng(0)
        pts = rng.uniform(-2e-4, 2e-4, (50, 3))
        values = wave.evaluate(pts[:, 0], pts[:, 1], pts[:, 2], 1e-15)
        assert np.all(values.ez == 0.0)

    def test_finite_at_origin(self):
        wave = MDipoleWave()
        t = math.pi / 2 / wave.omega           # sin(omega t) = 1
        values = wave.evaluate(np.zeros(1), np.zeros(1), np.zeros(1), t)
        assert np.isfinite(values.bz[0])
        # B_z(0) = -2 A0 f3(0) = -(4/3) A0 at sin = 1.
        assert values.bz[0] == pytest.approx(-4.0 / 3.0 * wave.amplitude,
                                             rel=1e-9)
        assert values.ex[0] == values.ey[0] == 0.0

    def test_azimuthal_electric_field(self):
        # E is azimuthal: E . r = 0 everywhere.
        wave = MDipoleWave()
        rng = np.random.default_rng(1)
        pts = rng.uniform(-1e-4, 1e-4, (100, 3))
        values = wave.evaluate(pts[:, 0], pts[:, 1], pts[:, 2], 0.1e-15)
        radial = (values.ex * pts[:, 0] + values.ey * pts[:, 1]
                  + values.ez * pts[:, 2])
        scale = np.abs(values.e).max() * np.abs(pts).max()
        assert np.abs(radial).max() < 1e-10 * scale

    def test_rotational_symmetry_about_z(self):
        # Rotating the query point about z rotates E and B with it.
        wave = MDipoleWave()
        angle = 0.7
        c, s = math.cos(angle), math.sin(angle)
        p = np.array([0.3e-4, 0.1e-4, 0.2e-4])
        q = np.array([c * p[0] - s * p[1], s * p[0] + c * p[1], p[2]])
        t = 0.4e-15
        vp = wave.evaluate(*[np.array([v]) for v in p], t)
        vq = wave.evaluate(*[np.array([v]) for v in q], t)
        rotated_e = (c * vp.ex[0] - s * vp.ey[0],
                     s * vp.ex[0] + c * vp.ey[0])
        assert vq.ex[0] == pytest.approx(rotated_e[0], rel=1e-9)
        assert vq.ey[0] == pytest.approx(rotated_e[1], rel=1e-9)
        rotated_b = (c * vp.bx[0] - s * vp.by[0],
                     s * vp.bx[0] + c * vp.by[0])
        assert vq.bx[0] == pytest.approx(rotated_b[0], rel=1e-9)
        assert vq.by[0] == pytest.approx(rotated_b[1], rel=1e-9)
        assert vq.bz[0] == pytest.approx(vp.bz[0], rel=1e-9)

    def test_standing_wave_time_structure(self):
        # E ~ cos(omega t), B ~ sin(omega t).
        wave = MDipoleWave()
        p = [np.array([0.25e-4]), np.array([0.1e-4]), np.array([0.15e-4])]
        at_zero = wave.evaluate(*p, 0.0)
        assert np.abs([at_zero.bx[0], at_zero.by[0], at_zero.bz[0]]).max() \
            == 0.0
        quarter = math.pi / 2 / wave.omega
        at_quarter = wave.evaluate(*p, quarter)
        assert abs(at_quarter.ex[0]) < 1e-9 * abs(at_zero.ex[0])


class TestMaxwellConsistency:
    def test_corrected_form_satisfies_maxwell(self):
        wave = MDipoleWave()
        rng = np.random.default_rng(2)
        for _ in range(3):
            point = rng.uniform(-1.2e-4, 1.2e-4, 3)
            residual = _numerical_maxwell_residual(wave, point, 0.37e-15)
            assert residual < 1e-6

    def test_paper_typo_form_violates_maxwell(self):
        # The literally printed eq. (14) does not solve Maxwell's
        # equations — that is how the typos were identified.
        wave = MDipoleWave(paper_typos=True)
        point = np.array([0.31e-4, 0.22e-4, -0.17e-4])
        residual = _numerical_maxwell_residual(wave, point, 0.37e-15)
        assert residual > 1e-3

    def test_divergence_free_b(self):
        wave = MDipoleWave()
        p = np.array([0.4e-4, -0.2e-4, 0.3e-4])
        t, h = 0.6e-15, 1e-9

        def b(q):
            values = wave.evaluate(np.array([q[0]]), np.array([q[1]]),
                                   np.array([q[2]]), t)
            return np.array([values.bx[0], values.by[0], values.bz[0]])

        div = sum((b(p + np.eye(3)[i] * h)[i]
                   - b(p - np.eye(3)[i] * h)[i]) / (2 * h)
                  for i in range(3))
        scale = np.abs(b(p)).max() / np.linalg.norm(p)
        assert abs(div) < 1e-5 * scale


class TestPulsedEnvelope:
    def test_default_is_steady(self):
        wave = MDipoleWave()
        assert wave.envelope(0.0) == 1.0
        assert wave.envelope(1.0e-12) == 1.0

    def test_ramp_shape(self):
        wave = MDipoleWave(ramp_cycles=4.0)
        period = 2.0 * math.pi / wave.omega
        assert wave.envelope(0.0) == 0.0
        assert wave.envelope(-1.0e-15) == 0.0
        assert wave.envelope(2.0 * period) == pytest.approx(0.5)
        assert wave.envelope(4.0 * period) == 1.0
        assert wave.envelope(10.0 * period) == 1.0

    def test_envelope_monotone_during_ramp(self):
        wave = MDipoleWave(ramp_cycles=3.0)
        period = 2.0 * math.pi / wave.omega
        samples = [wave.envelope(f * 3.0 * period)
                   for f in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert all(a < b for a, b in zip(samples, samples[1:]))

    def test_fields_scaled_by_envelope(self):
        steady = MDipoleWave()
        pulsed = MDipoleWave(ramp_cycles=4.0)
        period = 2.0 * math.pi / steady.omega
        t = 2.0 * period                      # envelope = 0.5
        p = [np.array([0.3e-4]), np.array([0.1e-4]), np.array([0.2e-4])]
        full = steady.evaluate(*p, t)
        half = pulsed.evaluate(*p, t)
        assert half.ex[0] == pytest.approx(0.5 * full.ex[0], rel=1e-12)
        assert half.bz[0] == pytest.approx(0.5 * full.bz[0], rel=1e-12)

    def test_negative_ramp_rejected(self):
        with pytest.raises(ConfigurationError):
            MDipoleWave(ramp_cycles=-1.0)

    def test_gentle_start_reduces_initial_kick(self):
        # Physically: electrons born inside the pulse's leading edge
        # get accelerated more gently than in the abruptly-on wave.
        import repro
        steady_ens = repro.paper_benchmark_ensemble(200, seed=31)
        pulsed_ens = steady_ens.copy()
        period = 2.0 * math.pi / MDipoleWave.PAPER_OMEGA
        dt = period / 200.0
        repro.advance(steady_ens, MDipoleWave(), dt, 100)
        repro.advance(pulsed_ens, MDipoleWave(ramp_cycles=8.0), dt, 100)
        assert pulsed_ens.component("gamma").max() < \
            steady_ens.component("gamma").max()


class TestTypoVariant:
    def test_variants_agree_on_e(self):
        corrected = MDipoleWave()
        literal = MDipoleWave(paper_typos=True)
        pts = np.random.default_rng(3).uniform(-1e-4, 1e-4, (20, 3))
        a = corrected.evaluate(pts[:, 0], pts[:, 1], pts[:, 2], 1e-16)
        b = literal.evaluate(pts[:, 0], pts[:, 1], pts[:, 2], 1e-16)
        np.testing.assert_array_equal(a.ex, b.ex)
        np.testing.assert_array_equal(a.ey, b.ey)

    def test_variants_differ_on_b(self):
        corrected = MDipoleWave()
        literal = MDipoleWave(paper_typos=True)
        pts = np.random.default_rng(4).uniform(-1e-4, 1e-4, (20, 3))
        t = math.pi / 2 / corrected.omega
        a = corrected.evaluate(pts[:, 0], pts[:, 1], pts[:, 2], t)
        b = literal.evaluate(pts[:, 0], pts[:, 1], pts[:, 2], t)
        assert not np.allclose(a.by, b.by)
        assert not np.allclose(a.bz, b.bz)

    def test_flops_attribute_positive(self):
        assert MDipoleWave.flops_per_evaluation > 100
