"""Integration test: two-stream instability growth rate.

The strictest whole-stack PIC validation in the suite: the measured
linear growth rate of the cold symmetric two-stream instability agrees
with kinetic theory only if the field solver, interpolation, pusher and
charge-conserving deposition are mutually consistent.
"""

import math
import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "examples"))

from two_stream_instability import (THEORY_RATE, fit_growth_rate,  # noqa: E402
                                    run)


class TestTwoStream:
    @pytest.fixture(scope="class")
    def result(self):
        times, field_energy, omega_p = run(periods=15.0, seed=1)
        return times, field_energy, omega_p

    def test_field_energy_grows_by_orders_of_magnitude(self, result):
        _, field_energy, _ = result
        assert field_energy.max() / field_energy[1] > 1.0e3

    def test_growth_rate_matches_cold_beam_theory(self, result):
        times, field_energy, omega_p = result
        rate = fit_growth_rate(times, field_energy) / omega_p
        # 32 cells / 32 ppc resolves the rate to ~15%.
        assert rate == pytest.approx(THEORY_RATE, rel=0.2)

    def test_instability_saturates(self, result):
        times, field_energy, _ = result
        # Exponential growth ends: the last two plasma periods add far
        # less energy than the linear phase's e-folding would.
        last_tenth = field_energy[int(0.9 * field_energy.size):]
        assert last_tenth.max() < 3.0 * last_tenth.min() or \
            last_tenth.max() < field_energy.max()
        # And the final level stays within two decades of the peak
        # (trapping oscillations, not collapse).
        assert field_energy[-1] > 1.0e-2 * field_energy.max()

    def test_total_momentum_stays_zero(self):
        # Symmetric beams: the instability must not create net momentum.
        from repro.constants import (ELECTRON_MASS, ELEMENTARY_CHARGE,
                                     SPEED_OF_LIGHT)
        from repro.fields import YeeGrid
        from repro.pic import PicSimulation, plasma_frequency, total_momentum
        from two_stream_instability import build_beams

        density = 1.0e18
        omega_p = plasma_frequency(density, ELECTRON_MASS,
                                   ELEMENTARY_CHARGE)
        v0 = 0.2 * SPEED_OF_LIGHT
        box = 2.0 * math.pi / (math.sqrt(3.0 / 8.0) * omega_p / v0)
        dx = box / 32
        grid = YeeGrid((0, 0, 0), (dx, dx, dx), (32, 2, 2))
        electrons = build_beams(grid, box, v0, density, 16, seed=2)
        scale = float(np.abs(electrons.momenta()).sum())
        simulation = PicSimulation(grid, electrons, 0.1 / omega_p,
                                   field_solver="spectral")
        simulation.run(int(8.0 * 2.0 * math.pi / omega_p / (0.1 / omega_p)))
        drift = np.abs(total_momentum(electrons))
        weights = electrons.component("weight").astype(np.float64)
        assert drift[0] / (scale * weights[0]) < 1e-2
