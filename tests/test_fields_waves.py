"""Tests for plane-wave sources: vacuum Maxwell consistency."""

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError
from repro.fields import PlaneWave, StandingPlaneWave


def _numerical_maxwell_residual(source, point, t, h=1e-9, dt=1e-20):
    """Max relative residual of both curl equations at one point."""
    def field(kind, p, tt):
        values = source.evaluate(np.array([p[0]]), np.array([p[1]]),
                                 np.array([p[2]]), tt)
        if kind == "e":
            return np.array([values.ex[0], values.ey[0], values.ez[0]])
        return np.array([values.bx[0], values.by[0], values.bz[0]])

    def curl(kind, p, tt):
        out = np.zeros(3)
        for i in range(3):
            j, k = (i + 1) % 3, (i + 2) % 3
            ej = np.zeros(3)
            ej[j] = h
            ek = np.zeros(3)
            ek[k] = h
            out[i] = ((field(kind, p + ej, tt)[k]
                       - field(kind, p - ej, tt)[k]) / (2 * h)
                      - (field(kind, p + ek, tt)[j]
                         - field(kind, p - ek, tt)[j]) / (2 * h))
        return out

    c = SPEED_OF_LIGHT
    faraday = curl("e", point, t) + (field("b", point, t + dt)
                                     - field("b", point, t - dt)) / (2 * dt) / c
    ampere = curl("b", point, t) - (field("e", point, t + dt)
                                    - field("e", point, t - dt)) / (2 * dt) / c
    scale = max(np.abs(curl("e", point, t)).max(),
                np.abs(curl("b", point, t)).max(), 1e-30)
    return max(np.abs(faraday).max(), np.abs(ampere).max()) / scale


OMEGA = 2.1e15


class TestPlaneWave:
    def test_amplitude_at_crest(self):
        wave = PlaneWave(amplitude=3.0, omega=OMEGA)
        values = wave.evaluate(np.zeros(1), np.zeros(1), np.zeros(1), 0.0)
        assert values.ey[0] == pytest.approx(3.0)
        assert values.bz[0] == pytest.approx(3.0)

    def test_transverse(self):
        wave = PlaneWave(1.0, OMEGA)
        values = wave.evaluate(np.linspace(0, 1e-4, 5), np.zeros(5),
                               np.zeros(5), 1e-16)
        assert np.all(values.ex == 0.0)
        assert np.all(values.ez == 0.0)
        assert np.all(values.bx == 0.0)

    def test_propagates_at_c(self):
        wave = PlaneWave(1.0, OMEGA)
        t = 2.3e-15
        shift = SPEED_OF_LIGHT * t
        at_origin_t0 = wave.evaluate(np.zeros(1), np.zeros(1),
                                     np.zeros(1), 0.0).ey[0]
        at_shift = wave.evaluate(np.array([shift]), np.zeros(1),
                                 np.zeros(1), t).ey[0]
        assert at_shift == pytest.approx(at_origin_t0, rel=1e-9)

    def test_maxwell_consistent(self):
        wave = PlaneWave(1.0e8, OMEGA)
        residual = _numerical_maxwell_residual(
            wave, np.array([1.1e-5, 0.0, 0.0]), 1.7e-15)
        assert residual < 1e-5

    def test_rejects_bad_omega(self):
        with pytest.raises(ConfigurationError):
            PlaneWave(1.0, 0.0)


class TestStandingPlaneWave:
    def test_node_structure(self):
        wave = StandingPlaneWave(1.0, OMEGA)
        quarter = np.pi / 2 / wave.wavenumber
        values = wave.evaluate(np.array([quarter]), np.zeros(1),
                               np.zeros(1), 0.0)
        assert values.ey[0] == pytest.approx(0.0, abs=1e-12)

    def test_e_b_quadrature_in_time(self):
        wave = StandingPlaneWave(1.0, OMEGA)
        x = np.array([0.3e-5])
        t_e = 0.0                               # cos(0) = 1: E maximal
        t_b = np.pi / 2 / OMEGA                 # sin: B maximal
        v_e = wave.evaluate(x, np.zeros(1), np.zeros(1), t_e)
        v_b = wave.evaluate(x, np.zeros(1), np.zeros(1), t_b)
        assert abs(v_e.bz[0]) < 1e-12
        assert abs(v_b.ey[0]) < 1e-9 * abs(v_b.bz[0] + 1e-30) or \
            abs(v_b.ey[0]) < 1e-6

    def test_maxwell_consistent(self):
        wave = StandingPlaneWave(1.0e8, OMEGA)
        residual = _numerical_maxwell_residual(
            wave, np.array([0.9e-5, 0.0, 0.0]), 0.9e-15)
        assert residual < 1e-5

    def test_rejects_bad_omega(self):
        with pytest.raises(ConfigurationError):
            StandingPlaneWave(1.0, -1.0)
