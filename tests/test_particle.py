"""Tests for the single-particle value object."""

import math

import pytest

from repro.constants import ELECTRON_MASS, SPEED_OF_LIGHT
from repro.errors import ConfigurationError
from repro.fp import FP3
from repro.particles import Particle


class TestConstruction:
    def test_defaults(self):
        p = Particle()
        assert p.weight == 1.0
        assert p.gamma == 1.0
        assert p.type_id == 0

    def test_rejects_negative_weight(self):
        with pytest.raises(ConfigurationError):
            Particle(weight=-1.0)

    def test_rejects_subluminal_gamma(self):
        with pytest.raises(ConfigurationError):
            Particle(gamma=0.9)


class TestPhysics:
    def test_mass_and_charge_via_table(self, type_table):
        p = Particle(type_id=0)
        assert p.mass(type_table) == pytest.approx(ELECTRON_MASS)
        assert p.charge(type_table) < 0.0

    def test_update_gamma(self, type_table):
        mc = ELECTRON_MASS * SPEED_OF_LIGHT
        p = Particle(momentum=FP3(mc, 0.0, 0.0))
        p.update_gamma(type_table)
        assert p.gamma == pytest.approx(math.sqrt(2.0))

    def test_set_momentum_refreshes_gamma(self, type_table):
        mc = ELECTRON_MASS * SPEED_OF_LIGHT
        p = Particle()
        p.set_momentum(FP3(0.0, 2.0 * mc, 0.0), type_table)
        assert p.gamma == pytest.approx(math.sqrt(5.0))

    def test_velocity_is_subluminal(self, type_table):
        mc = ELECTRON_MASS * SPEED_OF_LIGHT
        p = Particle()
        p.set_momentum(FP3(100.0 * mc, 0.0, 0.0), type_table)
        assert p.velocity(type_table).norm() < SPEED_OF_LIGHT

    def test_velocity_nonrelativistic_limit(self, type_table):
        v = 1.0e6      # 0.003% of c
        p = Particle()
        p.set_momentum(FP3(ELECTRON_MASS * v, 0.0, 0.0), type_table)
        assert p.velocity(type_table).x == pytest.approx(v, rel=1e-8)

    def test_kinetic_energy_rest(self, type_table):
        assert Particle().kinetic_energy(type_table) == 0.0

    def test_kinetic_energy_ultrarelativistic(self, type_table):
        mc = ELECTRON_MASS * SPEED_OF_LIGHT
        p = Particle()
        p.set_momentum(FP3(1000.0 * mc, 0.0, 0.0), type_table)
        # E_k ~ p c for gamma >> 1.
        assert p.kinetic_energy(type_table) == pytest.approx(
            1000.0 * mc * SPEED_OF_LIGHT, rel=1e-3)

    def test_copy_is_deep(self):
        p = Particle(position=FP3(1.0, 2.0, 3.0))
        q = p.copy()
        q.position.x = 9.0
        assert p.position.x == 1.0
