"""Tests for leapfrog setup, drivers and the RK4 reference."""

import math

import numpy as np
import pytest

from repro.constants import (ELECTRON_MASS, ELEMENTARY_CHARGE,
                             SPEED_OF_LIGHT)
from repro.core import (TrajectoryRecorder, advance, integrate_trajectory_rk4,
                        setup_leapfrog, undo_leapfrog)
from repro.errors import SimulationError
from repro.fields import NullField, PlaneWave, UniformField
from repro.particles import ParticleEnsemble

MC = ELECTRON_MASS * SPEED_OF_LIGHT


class TestLeapfrogStagger:
    def test_setup_shifts_momentum_back(self):
        field = UniformField(e=(1.0e6, 0.0, 0.0))
        ensemble = ParticleEnsemble.from_arrays([[0, 0, 0]], [[0, 0, 0]])
        dt = 1e-15
        setup_leapfrog(ensemble, field, dt)
        expected = ELEMENTARY_CHARGE * 1.0e6 * dt / 2.0   # -q E (-dt/2)
        assert ensemble.momenta()[0, 0] == pytest.approx(expected, rel=1e-12)

    def test_undo_inverts_setup_in_uniform_e(self):
        field = UniformField(e=(1.0e6, 2.0e6, -1.0e6))
        ensemble = ParticleEnsemble.from_arrays(
            [[0, 0, 0]], [[0.1 * MC, -0.2 * MC, 0.3 * MC]])
        before = ensemble.momenta().copy()
        dt = 1e-15
        setup_leapfrog(ensemble, field, dt)
        undo_leapfrog(ensemble, field, dt, 0.0)
        # With pure E (no v x B) the half kicks are exactly opposite.
        np.testing.assert_allclose(ensemble.momenta(), before, rtol=1e-9)

    def test_setup_updates_gamma(self):
        field = UniformField(e=(1.0e8, 0.0, 0.0))
        ensemble = ParticleEnsemble.from_arrays([[0, 0, 0]], [[0, 0, 0]])
        setup_leapfrog(ensemble, field, 1e-14)
        assert ensemble.component("gamma")[0] > 1.0


class TestAdvance:
    def test_returns_final_time(self):
        ensemble = ParticleEnsemble.from_arrays([[0, 0, 0]], [[0, 0, 0]])
        final = advance(ensemble, NullField(), 2.0e-16, 5, start_time=1e-15)
        assert final == pytest.approx(1e-15 + 1e-15)

    def test_zero_steps_is_noop(self):
        ensemble = ParticleEnsemble.from_arrays([[1, 2, 3]], [[0, 0, 0]])
        advance(ensemble, NullField(), 1e-16, 0)
        np.testing.assert_array_equal(ensemble.positions(), [[1, 2, 3]])

    def test_negative_steps_rejected(self):
        ensemble = ParticleEnsemble.from_arrays([[0, 0, 0]], [[0, 0, 0]])
        with pytest.raises(SimulationError):
            advance(ensemble, NullField(), 1e-16, -1)

    def test_callback_sees_every_step(self):
        ensemble = ParticleEnsemble.from_arrays([[0, 0, 0]], [[0, 0, 0]])
        seen = []
        advance(ensemble, NullField(), 1e-16, 4,
                callback=lambda step, time, ens: seen.append((step, time)))
        assert [s for s, _ in seen] == [0, 1, 2, 3]
        assert seen[-1][1] == pytest.approx(4e-16)

    def test_check_finite_raises_on_blowup(self):
        ensemble = ParticleEnsemble.from_arrays([[0, 0, 0]], [[0, 0, 0]])
        ensemble.component("x")[0] = np.nan
        with pytest.raises(SimulationError):
            advance(ensemble, NullField(), 1e-16, 1, check_finite=True)

    def test_time_dependent_field_sampled_at_step_times(self):
        # A wave with period T pushed for T with field evaluated at the
        # right times leaves a near-zero net momentum.
        omega = 2.0e15
        wave = PlaneWave(1.0e5, omega)
        period = 2.0 * math.pi / omega
        steps = 400
        dt = period / steps
        ensemble = ParticleEnsemble.from_arrays([[0, 0, 0]], [[0, 0, 0]])
        setup_leapfrog(ensemble, wave, dt)
        advance(ensemble, wave, dt, steps)
        impulse_scale = ELEMENTARY_CHARGE * 1.0e5 * period
        assert abs(ensemble.momenta()[0, 1]) < 0.02 * impulse_scale


class TestTrajectoryRecorder:
    def test_records_shapes(self):
        ensemble = ParticleEnsemble.from_arrays(
            np.zeros((3, 3)), np.zeros((3, 3)))
        recorder = TrajectoryRecorder()
        advance(ensemble, NullField(), 1e-16, 7, callback=recorder)
        assert recorder.positions().shape == (7, 3, 3)
        assert recorder.momenta().shape == (7, 3, 3)
        assert recorder.gammas().shape == (7, 3)
        assert len(recorder.times) == 7

    def test_recorded_positions_are_snapshots(self):
        field = UniformField(e=(1e7, 0, 0))
        ensemble = ParticleEnsemble.from_arrays([[0, 0, 0]], [[0, 0, 0]])
        recorder = TrajectoryRecorder()
        advance(ensemble, field, 1e-15, 5, callback=recorder)
        xs = recorder.positions()[:, 0, 0]
        assert np.all(np.diff(np.abs(xs)) > 0)     # monotone acceleration


class TestRk4Reference:
    def test_returns_initial_state_first(self):
        times, positions, momenta = integrate_trajectory_rk4(
            [1.0, 2.0, 3.0], [0.1 * MC, 0.0, 0.0], ELECTRON_MASS,
            -ELEMENTARY_CHARGE, NullField(), 1e-16, 3)
        assert times[0] == 0.0
        np.testing.assert_array_equal(positions[0], [1.0, 2.0, 3.0])

    def test_free_streaming_exact(self):
        u = 0.5
        p = u * MC
        gamma = math.sqrt(1.0 + u * u)
        v = p / (gamma * ELECTRON_MASS)
        _, positions, momenta = integrate_trajectory_rk4(
            [0.0, 0.0, 0.0], [p, 0.0, 0.0], ELECTRON_MASS,
            -ELEMENTARY_CHARGE, NullField(), 1e-15, 10)
        assert positions[-1, 0] == pytest.approx(v * 1e-14, rel=1e-12)
        np.testing.assert_array_equal(momenta[-1], momenta[0])

    def test_fourth_order_convergence(self):
        # Halving dt should reduce the error by ~16x.
        field = UniformField(b=(0.0, 0.0, 1.0e4))
        from repro.constants import cyclotron_frequency
        gamma = math.sqrt(2.0)
        omega = cyclotron_frequency(1.0e4, gamma)
        period = 2.0 * math.pi / omega
        radius = MC / (ELEMENTARY_CHARGE * 1.0e4 / SPEED_OF_LIGHT)
        start_pos = [0.0, -radius, 0.0]
        start_mom = [MC, 0.0, 0.0]

        def error(steps):
            _, positions, _ = integrate_trajectory_rk4(
                start_pos, start_mom, ELECTRON_MASS, -ELEMENTARY_CHARGE,
                field, period / steps, steps)
            return np.linalg.norm(positions[-1] - start_pos)

        ratio = error(50) / error(100)
        assert 10.0 < ratio < 24.0
