"""Tests for uniform and crossed field sources."""

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError
from repro.fields import CrossedField, NullField, UniformField
from repro.fp import FP3


class TestNullField:
    def test_zero_everywhere(self):
        x = np.linspace(-1, 1, 7)
        values = NullField().evaluate(x, x, x, 3.0)
        for component in values:
            assert np.all(component == 0.0)

    def test_outputs_independent(self):
        values = NullField().evaluate(np.zeros(3), np.zeros(3),
                                      np.zeros(3), 0.0)
        values.ex[0] = 1.0
        assert values.ey[0] == 0.0


class TestUniformField:
    def test_constant_values(self):
        field = UniformField(e=(1, 2, 3), b=(4, 5, 6))
        values = field.evaluate(np.zeros(5), np.zeros(5), np.zeros(5), 9.9)
        assert np.all(values.ex == 1) and np.all(values.bz == 6)

    def test_shape_follows_input(self):
        field = UniformField(e=(1, 0, 0))
        values = field.evaluate(np.zeros((2, 3)), np.zeros((2, 3)),
                                np.zeros((2, 3)), 0.0)
        assert values.ex.shape == (2, 3)

    def test_scalar_evaluate_at(self):
        field = UniformField(b=(0, 0, 7))
        e, b = field.evaluate_at(FP3(1, 2, 3), 0.0)
        assert b.z == 7.0
        assert e.norm() == 0.0

    def test_field_values_stack_accessors(self):
        field = UniformField(e=(1, 2, 3))
        values = field.evaluate(np.zeros(2), np.zeros(2), np.zeros(2), 0.0)
        assert values.e.shape == (2, 3)
        np.testing.assert_array_equal(values.e[0], [1, 2, 3])


class TestCrossedField:
    def test_drift_velocity_formula(self):
        field = CrossedField(e=5.0e3, b=1.0e4)
        vd = field.drift_velocity
        assert vd[1] == pytest.approx(-SPEED_OF_LIGHT * 0.5)
        assert vd[0] == vd[2] == 0.0

    def test_rejects_superluminal_drift(self):
        with pytest.raises(ConfigurationError):
            CrossedField(e=2.0e4, b=1.0e4)

    def test_rejects_zero_b(self):
        with pytest.raises(ConfigurationError):
            CrossedField(e=1.0, b=0.0)

    def test_field_orientation(self):
        field = CrossedField(e=1.0e3, b=1.0e4)
        values = field.evaluate(np.zeros(1), np.zeros(1), np.zeros(1), 0.0)
        assert values.ex[0] == 1.0e3
        assert values.bz[0] == 1.0e4
        assert values.ey[0] == values.by[0] == 0.0
