"""Tests for the FP precision abstraction and FP3 vectors."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.fp import FP3, Precision

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
vectors = st.builds(FP3, finite, finite, finite)


class TestPrecision:
    def test_dtypes(self):
        assert Precision.SINGLE.dtype == np.float32
        assert Precision.DOUBLE.dtype == np.float64

    def test_itemsizes(self):
        assert Precision.SINGLE.itemsize == 4
        assert Precision.DOUBLE.itemsize == 8

    def test_paper_particle_bytes_single(self):
        # Section 3: "storage of each particle requires 34 bytes of
        # memory (36 bytes after memory alignment)".
        assert Precision.SINGLE.particle_bytes == 34
        assert Precision.SINGLE.particle_bytes_aligned == 36

    def test_paper_particle_bytes_double(self):
        # Section 3: "66 bytes of memory (72 bytes after alignment)".
        assert Precision.DOUBLE.particle_bytes == 66
        assert Precision.DOUBLE.particle_bytes_aligned == 72

    def test_values_match_paper_labels(self):
        assert Precision.SINGLE.value == "float"
        assert Precision.DOUBLE.value == "double"

    def test_epsilon(self):
        assert Precision.SINGLE.epsilon == pytest.approx(1.19e-7, rel=0.01)
        assert Precision.DOUBLE.epsilon == pytest.approx(2.22e-16, rel=0.01)

    def test_from_dtype(self):
        assert Precision.from_dtype(np.float32) is Precision.SINGLE
        assert Precision.from_dtype(np.dtype("float64")) is Precision.DOUBLE

    def test_from_dtype_rejects_others(self):
        with pytest.raises(ConfigurationError):
            Precision.from_dtype(np.int32)


class TestFP3Arithmetic:
    def test_add_sub(self):
        a = FP3(1.0, 2.0, 3.0)
        b = FP3(0.5, -1.0, 2.0)
        assert (a + b) == FP3(1.5, 1.0, 5.0)
        assert (a - b) == FP3(0.5, 3.0, 1.0)

    def test_scalar_multiplication_commutes(self):
        a = FP3(1.0, -2.0, 3.0)
        assert a * 2.0 == 2.0 * a == FP3(2.0, -4.0, 6.0)

    def test_division(self):
        assert FP3(2.0, 4.0, 6.0) / 2.0 == FP3(1.0, 2.0, 3.0)

    def test_negation(self):
        assert -FP3(1.0, -2.0, 3.0) == FP3(-1.0, 2.0, -3.0)

    def test_iteration_order(self):
        assert list(FP3(1.0, 2.0, 3.0)) == [1.0, 2.0, 3.0]

    def test_norm(self):
        assert FP3(3.0, 4.0, 0.0).norm() == pytest.approx(5.0)
        assert FP3(3.0, 4.0, 0.0).norm2() == pytest.approx(25.0)

    def test_cross_right_handed(self):
        x, y = FP3(1, 0, 0), FP3(0, 1, 0)
        assert x.cross(y) == FP3(0, 0, 1)

    def test_array_roundtrip(self):
        a = FP3(1.5, -2.5, 3.5)
        assert FP3.from_array(a.as_array()) == a

    def test_copy_is_independent(self):
        a = FP3(1.0, 2.0, 3.0)
        b = a.copy()
        b.x = 9.0
        assert a.x == 1.0


class TestFP3Properties:
    @given(vectors, vectors)
    def test_cross_antisymmetric(self, a, b):
        ab = a.cross(b)
        ba = b.cross(a)
        assert ab.x == pytest.approx(-ba.x, abs=1e-6)
        assert ab.y == pytest.approx(-ba.y, abs=1e-6)
        assert ab.z == pytest.approx(-ba.z, abs=1e-6)

    @given(vectors, vectors)
    def test_cross_orthogonal_to_operands(self, a, b):
        c = a.cross(b)
        scale = max(a.norm() * b.norm(), 1.0)
        assert abs(c.dot(a)) <= 1e-6 * scale * max(a.norm(), 1.0)
        assert abs(c.dot(b)) <= 1e-6 * scale * max(b.norm(), 1.0)

    @given(vectors)
    def test_self_cross_is_zero(self, a):
        c = a.cross(a)
        assert c.norm() <= 1e-9 * max(a.norm2(), 1.0)

    @given(vectors, vectors)
    def test_dot_symmetric(self, a, b):
        assert a.dot(b) == pytest.approx(b.dot(a), rel=1e-12, abs=1e-12)

    @given(vectors)
    def test_norm_matches_numpy(self, a):
        assert a.norm() == pytest.approx(
            float(np.linalg.norm(a.as_array())), rel=1e-12, abs=1e-12)

    @given(vectors, vectors, vectors)
    def test_lagrange_triple_product(self, a, b, c):
        # a x (b x c) = b (a.c) - c (a.b)
        left = a.cross(b.cross(c))
        right = b * a.dot(c) - c * a.dot(b)
        scale = max(a.norm() * b.norm() * c.norm(), 1.0)
        assert (left - right).norm() <= 1e-6 * scale
