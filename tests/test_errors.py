"""The exception hierarchy is fixed API: assert every edge of it.

Callers are documented (module docstring of :mod:`repro.errors`) to
catch ``ReproError`` for any library failure and ``DeviceError`` for
any runtime-simulator failure; this module pins those contracts the
way ``test_constants.py`` pins the physical constants.
"""

import inspect

import pytest

from repro import errors
from repro.errors import (AllocationFailedError, ConfigurationError,
                          DeviceError, DeviceLostError, ExchangeTimeoutError,
                          FieldError, GraphError, HazardError,
                          JobDeadlineError, JobPreemptedError,
                          JobRejectedError, KernelError, LaunchTimeoutError,
                          LayoutError, MemoryModelError, ReproError,
                          ServiceError, SimulationError, TraceError,
                          ValidationError)

#: Every deliberate error class and its direct base, as documented in
#: the module docstring's catch-hierarchy diagram.
HIERARCHY = {
    ReproError: Exception,
    ConfigurationError: ReproError,
    LayoutError: ReproError,
    DeviceError: ReproError,
    MemoryModelError: DeviceError,
    AllocationFailedError: MemoryModelError,
    KernelError: DeviceError,
    GraphError: KernelError,
    HazardError: KernelError,
    DeviceLostError: DeviceError,
    LaunchTimeoutError: DeviceError,
    ExchangeTimeoutError: LaunchTimeoutError,
    FieldError: ReproError,
    SimulationError: ReproError,
    ValidationError: SimulationError,
    ServiceError: ReproError,
    JobRejectedError: ServiceError,
    JobDeadlineError: ServiceError,
    JobPreemptedError: ServiceError,
    TraceError: ReproError,
}


@pytest.mark.parametrize("klass,base", HIERARCHY.items(),
                         ids=lambda x: x.__name__)
def test_direct_base(klass, base):
    assert klass.__bases__ == (base,)


def test_hierarchy_is_exhaustive():
    """No error class exists that the diagram (and this test) misses."""
    defined = {obj for _, obj in inspect.getmembers(errors, inspect.isclass)
               if issubclass(obj, ReproError)}
    assert defined == set(HIERARCHY)


def test_docstring_mentions_every_class():
    doc = errors.__doc__
    for klass in HIERARCHY:
        if klass is not ReproError:
            assert klass.__name__ in doc, (
                f"{klass.__name__} missing from the errors.py module "
                f"docstring's catch-hierarchy example")


def test_device_error_catches_all_runtime_failures():
    for klass in (MemoryModelError, AllocationFailedError, KernelError,
                  GraphError, DeviceLostError, LaunchTimeoutError,
                  ExchangeTimeoutError):
        with pytest.raises(DeviceError):
            raise klass("injected")


def test_transient_vs_fatal_split():
    # The resilience layer relies on this: a device loss must never be
    # swallowed by handlers of the transient classes.
    assert not issubclass(DeviceLostError, (LaunchTimeoutError,
                                            AllocationFailedError,
                                            KernelError))
    assert issubclass(AllocationFailedError, MemoryModelError)
    # An exchange stall is transient: the retry machinery that catches
    # hung launches must catch stalled exchanges too.
    assert issubclass(ExchangeTimeoutError, LaunchTimeoutError)


def test_service_errors_are_scheduler_level():
    # The documented catch order: ``except (ServiceError, DeviceError)``
    # around a schedule is exhaustive for per-job failures, which only
    # works if the two branches never overlap.
    for klass in (JobRejectedError, JobDeadlineError, JobPreemptedError):
        assert issubclass(klass, ServiceError)
        assert not issubclass(klass, DeviceError)
